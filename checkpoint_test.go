package streamtok_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"streamtok"
	"streamtok/internal/machinefile"
	"streamtok/internal/workload"
)

// checkpointFormats are the bounded catalog grammars with a workload
// generator — the differential matrix for resumable streams.
var checkpointFormats = []string{"json", "csv", "tsv", "xml", "yaml", "fasta", "dns", "log"}

func compileCatalog(t *testing.T, name string, opts streamtok.Options) *streamtok.Tokenizer {
	t.Helper()
	g, err := streamtok.CatalogGrammar(name)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := streamtok.NewWithOptions(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// feedChunks pushes input through s in fixed-size chunks, appending
// emitted tokens to *out and verifying every emitted text against the
// token's absolute offsets into the original input.
func feedChunks(t *testing.T, s *streamtok.Streamer, input, full []byte, chunk int, out *[]streamtok.Token) {
	t.Helper()
	emit := func(tk streamtok.Token, text []byte) {
		if tk.Start < 0 || tk.End > len(full) || !bytes.Equal(text, full[tk.Start:tk.End]) {
			t.Fatalf("token %+v text %q disagrees with input offsets", tk, text)
		}
		*out = append(*out, tk)
	}
	for off := 0; off < len(input); off += chunk {
		end := off + chunk
		if end > len(input) {
			end = len(input)
		}
		s.Feed(input[off:end], emit)
	}
}

// TestCheckpointResumeDifferential is the tentpole correctness test:
// for every bounded catalog grammar, under both the fused and the split
// engines, a single pass feeds the input in small chunks and takes a
// cursor at every chunk boundary (proving Checkpoint does not perturb
// the live stream), then every cursor is resumed on a second tokenizer
// of the same build and driven to EOF. Each resumed stream must emit
// exactly the reference tokens the suspended stream had not yet
// emitted, with identical offsets, texts, and Rest.
func TestCheckpointResumeDifferential(t *testing.T) {
	for _, name := range checkpointFormats {
		for _, mode := range []struct {
			label string
			opts  streamtok.Options
		}{
			{"fused", streamtok.Options{}},
			{"split", streamtok.Options{DisableFused: true}},
		} {
			t.Run(name+"/"+mode.label, func(t *testing.T) {
				input, err := workload.Generate(name, 7, 600)
				if err != nil {
					t.Fatal(err)
				}
				tokA := compileCatalog(t, name, mode.opts)
				tokB := compileCatalog(t, name, mode.opts)
				wantToks, wantRest := tokA.TokenizeBytes(input)

				const chunk = 3
				// Single pass: cursor at every chunk boundary.
				type mark struct {
					cursor  []byte
					emitted int // tokens emitted before the boundary
				}
				var marks []mark
				var live []streamtok.Token
				s := tokA.AcquireStreamer()
				for off := 0; off < len(input); off += chunk {
					end := off + chunk
					if end > len(input) {
						end = len(input)
					}
					cur, err := s.Checkpoint()
					if err != nil {
						t.Fatalf("checkpoint at %d: %v", off, err)
					}
					marks = append(marks, mark{cur, len(live)})
					feedChunks(t, s, input[off:end], input, chunk, &live)
				}
				if rest := s.Close(func(tk streamtok.Token, text []byte) {
					live = append(live, tk)
				}); rest != wantRest {
					t.Fatalf("checkpointed pass rest %d, want %d", rest, wantRest)
				}
				tokA.ReleaseStreamer(s)
				if len(live) != len(wantToks) {
					t.Fatalf("checkpointed pass emitted %d tokens, want %d (Checkpoint perturbed the stream)",
						len(live), len(wantToks))
				}
				for i := range wantToks {
					if live[i] != wantToks[i] {
						t.Fatalf("checkpointed pass token %d = %+v, want %+v", i, live[i], wantToks[i])
					}
				}

				// Resume every cursor and drive it to EOF.
				for mi, m := range marks {
					boundary := mi * chunk
					r, err := streamtok.Resume(tokB, m.cursor)
					if err != nil {
						t.Fatalf("resume cursor at byte %d: %v", boundary, err)
					}
					var suffix []streamtok.Token
					feedChunks(t, r, input[boundary:], input, 64, &suffix)
					rest := r.Close(func(tk streamtok.Token, text []byte) {
						suffix = append(suffix, tk)
					})
					tokB.ReleaseStreamer(r)
					if rest != wantRest {
						t.Fatalf("cursor at %d: rest %d, want %d", boundary, rest, wantRest)
					}
					want := wantToks[m.emitted:]
					if len(suffix) != len(want) {
						t.Fatalf("cursor at %d: resumed stream emitted %d tokens, want %d",
							boundary, len(suffix), len(want))
					}
					for i := range want {
						if suffix[i] != want[i] {
							t.Fatalf("cursor at %d: token %d = %+v, want %+v",
								boundary, i, suffix[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestResumeCrossEngine: a cursor taken under the fused engine resumes
// on a split-engine build of the same grammar (and vice versa). The
// cursor carries byte-level state only, so it is portable across engine
// representations; the QA cross-check is skipped when modes differ.
func TestResumeCrossEngine(t *testing.T) {
	input, err := workload.Generate("json", 11, 800)
	if err != nil {
		t.Fatal(err)
	}
	fused := compileCatalog(t, "json", streamtok.Options{})
	split := compileCatalog(t, "json", streamtok.Options{DisableFused: true})
	if fused.Engine().Mode == split.Engine().Mode {
		t.Skipf("json compiles to %q under both option sets; cross-engine resume not exercisable", fused.Engine().Mode)
	}
	wantToks, wantRest := fused.TokenizeBytes(input)

	for _, dir := range []struct {
		label      string
		from, onto *streamtok.Tokenizer
	}{
		{"fused->split", fused, split},
		{"split->fused", split, fused},
	} {
		t.Run(dir.label, func(t *testing.T) {
			cut := 413 // mid-token on purpose: any byte offset is checkpointable
			s := dir.from.AcquireStreamer()
			var prefix []streamtok.Token
			feedChunks(t, s, input[:cut], input, 7, &prefix)
			cur, err := s.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			dir.from.ReleaseStreamer(s)

			r, err := streamtok.Resume(dir.onto, cur)
			if err != nil {
				t.Fatal(err)
			}
			got := append([]streamtok.Token(nil), prefix...)
			feedChunks(t, r, input[cut:], input, 7, &got)
			rest := r.Close(func(tk streamtok.Token, _ []byte) { got = append(got, tk) })
			dir.onto.ReleaseStreamer(r)
			if rest != wantRest || len(got) != len(wantToks) {
				t.Fatalf("rest %d tokens %d, want %d/%d", rest, len(got), wantRest, len(wantToks))
			}
			for i := range wantToks {
				if got[i] != wantToks[i] {
					t.Fatalf("token %d = %+v, want %+v", i, got[i], wantToks[i])
				}
			}
		})
	}
}

// TestResumeWrongGrammar: the cert-hash binding refuses a cursor taken
// under a different grammar.
func TestResumeWrongGrammar(t *testing.T) {
	jsonTok := compileCatalog(t, "json", streamtok.Options{})
	csvTok := compileCatalog(t, "csv", streamtok.Options{})
	s := jsonTok.AcquireStreamer()
	s.Feed([]byte(`{"a": 1`), nil)
	cur, err := s.Checkpoint()
	jsonTok.ReleaseStreamer(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := streamtok.Resume(csvTok, cur); !errors.Is(err, streamtok.ErrCursor) || !errors.Is(err, streamtok.ErrCertMismatch) {
		t.Fatalf("wrong-grammar resume error = %v, want ErrCursor wrapping ErrCertMismatch", err)
	}
	// Same grammar, fresh compile: accepted.
	jsonTok2 := compileCatalog(t, "json", streamtok.Options{})
	r, err := streamtok.Resume(jsonTok2, cur)
	if err != nil {
		t.Fatalf("same-grammar resume refused: %v", err)
	}
	jsonTok2.ReleaseStreamer(r)
}

// TestCursorTampering: every truncation and every single-bit flip of a
// valid cursor is refused (CRC32 detects all single-bit errors), as is
// garbage. Refusals wrap both ErrCursor and machinefile.ErrFormat.
func TestCursorTampering(t *testing.T) {
	tok := compileCatalog(t, "json", streamtok.Options{})
	s := tok.AcquireStreamer()
	s.Feed([]byte(`{"key": [1, 2.5e-3, "str`), nil)
	cur, err := s.Checkpoint()
	tok.ReleaseStreamer(s)
	if err != nil {
		t.Fatal(err)
	}

	refuse := func(blob []byte, what string) {
		t.Helper()
		if _, err := streamtok.Resume(tok, blob); !errors.Is(err, streamtok.ErrCursor) || !errors.Is(err, machinefile.ErrFormat) {
			t.Fatalf("%s: error = %v, want ErrCursor wrapping machinefile.ErrFormat", what, err)
		}
	}

	for n := 0; n < len(cur); n++ {
		refuse(cur[:n], fmt.Sprintf("truncation to %d bytes", n))
	}
	for i := 0; i < len(cur); i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), cur...)
			flipped[i] ^= 1 << bit
			refuse(flipped, fmt.Sprintf("bit flip at byte %d bit %d", i, bit))
		}
	}
	refuse(nil, "nil blob")
	refuse(bytes.Repeat([]byte{0xAA}, 64), "garbage")
}

// TestCheckpointAtEOF: a stream suspended after its entire input (but
// before Close) resumes and drains the tail correctly.
func TestCheckpointAtEOF(t *testing.T) {
	tok := compileCatalog(t, "csv", streamtok.Options{})
	input, err := workload.Generate("csv", 3, 400)
	if err != nil {
		t.Fatal(err)
	}
	wantToks, wantRest := tok.TokenizeBytes(input)

	s := tok.AcquireStreamer()
	var prefix []streamtok.Token
	feedChunks(t, s, input, input, 5, &prefix)
	cur, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	tok.ReleaseStreamer(s)

	r, err := streamtok.Resume(tok, cur)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]streamtok.Token(nil), prefix...)
	rest := r.Close(func(tk streamtok.Token, _ []byte) { got = append(got, tk) })
	tok.ReleaseStreamer(r)
	if rest != wantRest || len(got) != len(wantToks) {
		t.Fatalf("rest %d tokens %d, want %d/%d", rest, len(got), wantRest, len(wantToks))
	}
	for i := range wantToks {
		if got[i] != wantToks[i] {
			t.Fatalf("token %d = %+v, want %+v", i, got[i], wantToks[i])
		}
	}
}

// TestCheckpointStopped: stopped and released streams refuse Checkpoint.
func TestCheckpointStopped(t *testing.T) {
	tok := compileCatalog(t, "json", streamtok.Options{})
	s := tok.NewStreamer()
	s.Feed([]byte(`[1]`), nil)
	s.Close(nil)
	if _, err := s.Checkpoint(); err == nil {
		t.Error("Checkpoint of a closed stream should fail")
	}
	s2 := tok.AcquireStreamer()
	tok.ReleaseStreamer(s2)
	if _, err := s2.Checkpoint(); err == nil {
		t.Error("Checkpoint of a released streamer should fail")
	}
}

// TestCheckpointBPE: cursors work for BPE tokenizers — the pretokenizer
// boundary state is the only cross-chunk state, so a resumed stream's
// pieces match the reference encoding exactly (the piece cache restarts
// cold and re-earns its hits).
func TestCheckpointBPE(t *testing.T) {
	v := trainTestVocab(t)
	tok, err := streamtok.Compile(v, streamtok.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := workload.Prompts(5, 1<<13)
	want := v.Encode(nil, input)

	cut := len(input) / 3
	s := tok.AcquireStreamer()
	var ids []int
	emit := func(tk streamtok.Token, _ []byte) { ids = append(ids, tk.Rule) }
	s.Feed(input[:cut], emit)
	cur, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	tok.ReleaseStreamer(s)

	r, err := streamtok.Resume(tok, cur)
	if err != nil {
		t.Fatal(err)
	}
	r.Feed(input[cut:], emit)
	rest := r.Close(emit)
	tok.ReleaseStreamer(r)
	if rest != len(input) {
		t.Fatalf("rest %d, want %d", rest, len(input))
	}
	if len(ids) != len(want) {
		t.Fatalf("resumed BPE stream produced %d pieces, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("piece %d = %d, want %d", i, ids[i], want[i])
		}
	}
}

// TestResumeCounters: a resumed stream's own Stats continue from the
// suspension point, and the tokenizer aggregate counts each byte and
// token exactly once across a same-process suspend/resume cycle.
func TestResumeCounters(t *testing.T) {
	tok := compileCatalog(t, "log", streamtok.Options{})
	input, err := workload.Generate("log", 9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wantToks, _ := tok.TokenizeBytes(input)
	// TokenizeBytes runs through the pooled streamer path and folds into
	// the aggregate; snapshot the baseline to measure only the cycle.
	base := tok.AggregateStats()

	cut := len(input) / 2
	s := tok.AcquireStreamer()
	s.Feed(input[:cut], nil)
	cur, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	tok.ReleaseStreamer(s) // suspended segment folds its share here

	r, err := streamtok.Resume(tok, cur)
	if err != nil {
		t.Fatal(err)
	}
	r.Feed(input[cut:], nil)
	r.Close(nil)

	// Per-stream view is cumulative across the suspension.
	st := r.Stats()
	if st.BytesIn != uint64(len(input)) {
		t.Errorf("resumed stream BytesIn = %d, want %d (cursor counters not adopted)", st.BytesIn, len(input))
	}
	if st.TokensOut != uint64(len(wantToks)) {
		t.Errorf("resumed stream TokensOut = %d, want %d", st.TokensOut, len(wantToks))
	}
	tok.ReleaseStreamer(r)

	// Aggregate counts the cycle once: the suspended segment folded
	// [0,cut) and the resumed stream folds only its delta.
	agg := tok.AggregateStats()
	if got := agg.BytesIn - base.BytesIn; got != uint64(len(input)) {
		t.Errorf("aggregate BytesIn delta = %d, want %d (suspend/resume double-counted)", got, len(input))
	}
	if got := agg.TokensOut - base.TokensOut; got != uint64(len(wantToks)) {
		t.Errorf("aggregate TokensOut delta = %d, want %d", got, len(wantToks))
	}
	if got := agg.Streams - base.Streams; got != 2 {
		t.Errorf("aggregate Streams delta = %d, want 2 (each segment counts)", got)
	}
}
