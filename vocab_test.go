package streamtok_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamtok"
	"streamtok/internal/workload"
)

func trainTestVocab(t *testing.T) *streamtok.Vocab {
	t.Helper()
	v, err := streamtok.TrainVocab(workload.Prompts(21, 1<<18), 800, 0)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCompileVocab(t *testing.T) {
	v := trainTestVocab(t)
	tok, err := streamtok.Compile(v, streamtok.Options{})
	if err != nil {
		t.Fatal(err)
	}

	e := tok.Engine()
	if !strings.HasPrefix(e.Mode, "bpe+") {
		t.Errorf("Engine().Mode = %q, want bpe+*", e.Mode)
	}
	if e.TableBytes <= 0 || e.K <= 0 {
		t.Errorf("EngineInfo not populated: %+v", e)
	}
	if tok.Vocab() == nil || tok.Vocab().Hash() != v.Hash() {
		t.Error("Tokenizer.Vocab() does not round-trip")
	}

	// The certificate binds to the vocabulary hash and reports the
	// combined resident footprint.
	c := tok.Certificate()
	if c == nil {
		t.Fatal("no certificate")
	}
	if c.GrammarHash != v.Hash() {
		t.Errorf("certificate hash %s != vocab %s", c.GrammarHash, v.Hash())
	}
	if c.EngineMode != e.Mode || c.TableBytes != e.TableBytes {
		t.Errorf("certificate (%s, %d B) disagrees with Engine() (%s, %d B)",
			c.EngineMode, c.TableBytes, e.Mode, e.TableBytes)
	}

	// Streamed output equals the reference encoding; offsets cover the
	// input.
	input := workload.Prompts(77, 1<<14)
	want := v.Encode(nil, input)
	toks, rest := tok.TokenizeBytes(input)
	if rest != len(input) || len(toks) != len(want) {
		t.Fatalf("stream: %d tokens rest %d, reference %d tokens len %d", len(toks), rest, len(want), len(input))
	}
	var ranks []int
	for i, tk := range toks {
		if tk.Rule != want[i] {
			t.Fatalf("token %d: rank %d, reference %d", i, tk.Rule, want[i])
		}
		ranks = append(ranks, tk.Rule)
	}
	if !bytes.Equal(v.Decode(nil, ranks), input) {
		t.Fatal("decode does not round-trip")
	}
}

func TestVocabStreamerAndStats(t *testing.T) {
	v := trainTestVocab(t)
	tok, err := streamtok.Compile(v, streamtok.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := workload.Prompts(5, 1<<13)
	want := v.Encode(nil, input)

	s := tok.AcquireStreamer()
	var got []int
	emit := func(tk streamtok.Token, _ []byte) { got = append(got, tk.Rule) }
	for i := 0; i < len(input); i += 100 {
		e := i + 100
		if e > len(input) {
			e = len(input)
		}
		s.Feed(input[i:e], emit)
	}
	if rest := s.Close(emit); rest != len(input) {
		t.Fatalf("rest %d != %d", rest, len(input))
	}
	st := s.Stats()
	tok.ReleaseStreamer(s)

	if len(got) != len(want) {
		t.Fatalf("%d ranks streamed, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %d != %d", i, got[i], want[i])
		}
	}

	// Stats count at pretokenizer granularity with the pretok rule names.
	if st.BytesIn != uint64(len(input)) {
		t.Errorf("BytesIn %d != %d", st.BytesIn, len(input))
	}
	if st.TokensOut == 0 {
		t.Error("no pieces counted")
	}
	names := strings.Join(st.RuleNames, ",")
	if !strings.Contains(names, "word") || !strings.Contains(names, "space") {
		t.Errorf("RuleNames = %v, want pretokenizer names", st.RuleNames)
	}

	// Parallel entry points fall back to the sequential BPE path.
	got = got[:0]
	rest, ps := tok.TokenizeParallel(input, 4, emit)
	if rest != len(input) || ps.Segments != 1 {
		t.Errorf("TokenizeParallel: rest %d segments %d", rest, ps.Segments)
	}
	if len(got) != len(want) {
		t.Errorf("parallel fallback emitted %d, want %d", len(got), len(want))
	}
}

func TestLoadVocabSniffsFormat(t *testing.T) {
	v := trainTestVocab(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "test.tiktoken")
	if err := os.WriteFile(path, v.WriteTiktoken(), 0o644); err != nil {
		t.Fatal(err)
	}
	v2, err := streamtok.LoadVocab(path)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Hash() != v.Hash() {
		t.Fatal("tiktoken load changed the vocabulary")
	}
	if _, err := streamtok.ParseVocab([]byte(`{"model":{"type":"BPE"}}`)); err == nil {
		t.Error("sniffed tokenizer.json with no vocab accepted")
	}
}

func TestMachineFileSource(t *testing.T) {
	g := streamtok.MustParseGrammar(`[0-9]+`, `[a-z]+`, `[ \t\n]+`)
	var buf bytes.Buffer
	if err := streamtok.SaveCompiled(g, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.stm")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tok, err := streamtok.Compile(streamtok.MachineFile(path), streamtok.Options{})
	if err != nil {
		t.Fatal(err)
	}
	toks, rest := tok.TokenizeBytes([]byte("abc 123"))
	if rest != 7 || len(toks) != 3 {
		t.Fatalf("machine-file tokenizer: %d tokens, rest %d", len(toks), rest)
	}
	if _, err := streamtok.Compile(streamtok.MachineFile(filepath.Join(t.TempDir(), "missing")), streamtok.Options{}); err == nil {
		t.Error("missing machine file accepted")
	}
}
