package streamtok

import (
	"encoding/json"
	"expvar"
	"fmt"
	"strings"

	"streamtok/internal/obs"
)

// LatencyBuckets is the number of power-of-two emission-latency buckets
// in Stats.EmitLatency: bucket 0 holds latency 0, bucket i ≥ 1 holds
// latencies in [2^(i-1), 2^i) bytes, and the last bucket additionally
// absorbs everything larger.
const LatencyBuckets = obs.LatencyBuckets

// LatencyBucketLabel names EmitLatency bucket i: "0", "1", "2-3", ...,
// ">=16384".
func LatencyBucketLabel(i int) string { return obs.LatencyBucketLabel(i) }

// Stats is a snapshot of the always-on observability counters. Every
// Streamer maintains them while tokenizing — per chunk, per token, and
// per accel event, never per byte — so snapshots are free to take and
// the counters cost nothing to keep on.
//
// Obtain one from Streamer.Stats (one stream) or
// Tokenizer.AggregateStats (every stream the tokenizer started). String
// renders a human-readable report; MarshalJSON the machine-readable one
// (the same rendering cmd/streamtok -stats uses).
type Stats struct {
	// Streams counts streams started; StreamsDone those that finished
	// (Close, dead input, or discard).
	Streams     uint64
	StreamsDone uint64
	// BytesIn is the total bytes fed, in Chunks non-empty Feed calls.
	BytesIn uint64
	Chunks  uint64
	// TokensOut is the total tokens emitted; TokensByRule splits it by
	// rule id, with RuleNames naming each index.
	TokensOut    uint64
	TokensByRule []uint64
	RuleNames    []string

	// AccelAttempts counts bulk run-skip scans started by the fused
	// engine's accel states; AccelSkippedBytes is how much input they let
	// the engine skip without stepping the automata. AccelBackoffs counts
	// profitability-governor activations, and FusedFallbacks drops from
	// the accel-active fused loop to its suppressed copy (failed ring
	// checks, too-short runs, governor pauses).
	AccelAttempts     uint64
	AccelSkippedBytes uint64
	AccelBackoffs     uint64
	FusedFallbacks    uint64

	// CarryMax and RingMax are high-water marks in bytes of the carry
	// buffer (pending token prefix spanning chunks) and the K-byte delay
	// ring. RingMax never exceeds K; CarryMax is bounded by the longest
	// token plus K, never by the stream length.
	CarryMax uint64
	RingMax  uint64

	// EmitLatency histograms, per emitted token, how many bytes of input
	// beyond the token's end had been consumed when the token was
	// confirmed maximal. The paper bounds it by K (Close-time drains emit
	// with less).
	EmitLatency [LatencyBuckets]uint64

	// Parallel* count TokenizeParallel activity at the tokenizer level:
	// runs, segments processed, segments whose speculation synchronized,
	// and bytes the stitcher re-scanned.
	ParallelRuns      uint64
	ParallelSegments  uint64
	ParallelSynced    uint64
	ParallelReScanned uint64

	// BPE counters, nonzero only on vocabulary tokenizers. BPEPieces is
	// how many pretokenizer pieces the vocab stage encoded and
	// BPEFallbacks how many of them needed the exact merge loop (greedy
	// failed the local-validity check). The cache trio describes the
	// piece-encoding memo: hits (single-byte pieces included — the byte
	// table is the degenerate always-warm cache), misses (uncacheable
	// oversize pieces included), and entries discarded by wholesale cache
	// resets. Every piece is exactly one hit or one miss, so
	// BPECacheHits+BPECacheMisses == BPEPieces.
	BPEPieces         uint64
	BPEFallbacks      uint64
	BPECacheHits      uint64
	BPECacheMisses    uint64
	BPECacheEvictions uint64
}

// statsFrom converts an internal counter block into the public snapshot,
// attaching rule names and padding the per-rule slice to the grammar.
func (t *Tokenizer) statsFrom(c obs.Counters) Stats {
	g := t.inner.Machine().Grammar
	names := make([]string, len(g.Rules))
	for i := range names {
		names[i] = g.RuleName(i)
	}
	byRule := make([]uint64, len(g.Rules))
	copy(byRule, c.TokensByRule)
	return Stats{
		Streams:           c.Streams,
		StreamsDone:       c.StreamsDone,
		BytesIn:           c.BytesIn,
		Chunks:            c.Chunks,
		TokensOut:         c.TokensOut,
		TokensByRule:      byRule,
		RuleNames:         names,
		AccelAttempts:     c.AccelAttempts,
		AccelSkippedBytes: c.AccelSkippedBytes,
		AccelBackoffs:     c.AccelBackoffs,
		FusedFallbacks:    c.FusedFallbacks,
		CarryMax:          c.CarryMax,
		RingMax:           c.RingMax,
		EmitLatency:       c.EmitLatency,
		ParallelRuns:      c.ParallelRuns,
		ParallelSegments:  c.ParallelSegments,
		ParallelSynced:    c.ParallelSynced,
		ParallelReScanned: c.ParallelReScanned,
	}
}

// AggregateStats merges the counters of every stream this tokenizer
// started: finished streams (Close, dead input, Discard) exactly, and
// still-live streams as an instantaneous approximation — their counters
// are read without synchronizing with the feeding goroutine, so take
// authoritative aggregates after the streams close. On vocabulary
// tokenizers the BPE piece/fallback/cache counters ride along (they
// fold in when streams close or release).
func (t *Tokenizer) AggregateStats() Stats {
	st := t.statsFrom(t.inner.Counters())
	if t.bpe != nil {
		st.BPEPieces, st.BPEFallbacks = t.bpe.Counters()
		st.BPECacheHits, st.BPECacheMisses, st.BPECacheEvictions = t.bpe.CacheCounters()
	}
	return st
}

// Stats snapshots this stream's own counters. Like Feed it must be
// called by the stream's owner, not concurrently with Feed or Close.
// On vocabulary tokenizers the BPE counters cover activity since the
// stream's last Close/Reset (those fold the counts into the
// tokenizer's aggregates and zero the stream's).
func (s *Streamer) Stats() Stats {
	st := s.tok.statsFrom(s.inner.StreamCounters())
	if s.b != nil {
		st.BPEPieces, st.BPEFallbacks, st.BPECacheHits, st.BPECacheMisses, st.BPECacheEvictions = s.b.Counters()
	}
	return st
}

// LatencyQuantile returns an upper bound on the q-quantile (0 < q ≤ 1)
// of the emission-latency distribution: the upper edge of the histogram
// bucket the quantile falls in, 0 when no tokens were emitted. The
// paper bounds every steady-state emission by K, so p50 and p99 agree
// with MaxLatency on long streams; the serving layer's /statusz reads
// them from here.
func (s *Stats) LatencyQuantile(q float64) uint64 {
	c := obs.Counters{EmitLatency: s.EmitLatency}
	return c.LatencyQuantile(q)
}

// MaxLatency returns the upper edge of the highest non-empty EmitLatency
// bucket (0 when no tokens were emitted) — an upper bound on the worst
// emission latency observed, tight in the constant-K steady state.
func (s *Stats) MaxLatency() uint64 {
	for i := LatencyBuckets - 1; i > 0; i-- {
		if s.EmitLatency[i] != 0 {
			return uint64(1)<<i - 1
		}
	}
	return 0
}

// String renders the snapshot as a human-readable multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "streams:      %d started, %d done\n", s.Streams, s.StreamsDone)
	fmt.Fprintf(&b, "bytes in:     %d in %d chunks\n", s.BytesIn, s.Chunks)
	fmt.Fprintf(&b, "tokens out:   %d\n", s.TokensOut)
	for i, n := range s.TokensByRule {
		name := ""
		if i < len(s.RuleNames) {
			name = s.RuleNames[i]
		}
		fmt.Fprintf(&b, "  rule %-3d %-14s %d\n", i, name, n)
	}
	fmt.Fprintf(&b, "accel:        %d attempts, %d bytes skipped, %d backoffs, %d fused fallbacks\n",
		s.AccelAttempts, s.AccelSkippedBytes, s.AccelBackoffs, s.FusedFallbacks)
	fmt.Fprintf(&b, "high water:   carry %d B, ring %d B\n", s.CarryMax, s.RingMax)
	fmt.Fprintf(&b, "emit latency: max %d B past token end\n", s.MaxLatency())
	for i, n := range s.EmitLatency {
		if n != 0 {
			fmt.Fprintf(&b, "  %-8s %d\n", LatencyBucketLabel(i), n)
		}
	}
	if s.ParallelRuns > 0 {
		fmt.Fprintf(&b, "parallel:     %d runs, %d segments, %d synced, %d bytes re-scanned\n",
			s.ParallelRuns, s.ParallelSegments, s.ParallelSynced, s.ParallelReScanned)
	}
	if s.BPEPieces > 0 {
		fmt.Fprintf(&b, "bpe:          %d pieces, %d fallbacks, cache %d hits / %d misses / %d evictions\n",
			s.BPEPieces, s.BPEFallbacks, s.BPECacheHits, s.BPECacheMisses, s.BPECacheEvictions)
	}
	return b.String()
}

// MarshalJSON renders the snapshot with stable snake_case keys; this is
// the rendering cmd/streamtok -stats json and expvar publication share.
func (s Stats) MarshalJSON() ([]byte, error) {
	type ruleCount struct {
		Rule  int    `json:"rule"`
		Name  string `json:"name,omitempty"`
		Count uint64 `json:"count"`
	}
	rules := make([]ruleCount, len(s.TokensByRule))
	for i, n := range s.TokensByRule {
		rules[i] = ruleCount{Rule: i, Count: n}
		if i < len(s.RuleNames) {
			rules[i].Name = s.RuleNames[i]
		}
	}
	return json.Marshal(struct {
		Streams           uint64      `json:"streams"`
		StreamsDone       uint64      `json:"streams_done"`
		BytesIn           uint64      `json:"bytes_in"`
		Chunks            uint64      `json:"chunks"`
		TokensOut         uint64      `json:"tokens_out"`
		TokensByRule      []ruleCount `json:"tokens_by_rule"`
		AccelAttempts     uint64      `json:"accel_attempts"`
		AccelSkippedBytes uint64      `json:"accel_skipped_bytes"`
		AccelBackoffs     uint64      `json:"accel_backoffs"`
		FusedFallbacks    uint64      `json:"fused_fallbacks"`
		CarryMax          uint64      `json:"carry_max"`
		RingMax           uint64      `json:"ring_max"`
		EmitLatency       []uint64    `json:"emit_latency"`
		MaxLatency        uint64      `json:"max_latency"`
		ParallelRuns      uint64      `json:"parallel_runs"`
		ParallelSegments  uint64      `json:"parallel_segments"`
		ParallelSynced    uint64      `json:"parallel_synced"`
		ParallelReScanned uint64      `json:"parallel_rescanned"`
		BPEPieces         uint64      `json:"bpe_pieces"`
		BPEFallbacks      uint64      `json:"bpe_fallbacks"`
		BPECacheHits      uint64      `json:"bpe_cache_hits"`
		BPECacheMisses    uint64      `json:"bpe_cache_misses"`
		BPECacheEvictions uint64      `json:"bpe_cache_evictions"`
	}{
		Streams: s.Streams, StreamsDone: s.StreamsDone,
		BytesIn: s.BytesIn, Chunks: s.Chunks,
		TokensOut: s.TokensOut, TokensByRule: rules,
		AccelAttempts: s.AccelAttempts, AccelSkippedBytes: s.AccelSkippedBytes,
		AccelBackoffs: s.AccelBackoffs, FusedFallbacks: s.FusedFallbacks,
		CarryMax: s.CarryMax, RingMax: s.RingMax,
		EmitLatency: s.EmitLatency[:], MaxLatency: s.MaxLatency(),
		ParallelRuns: s.ParallelRuns, ParallelSegments: s.ParallelSegments,
		ParallelSynced: s.ParallelSynced, ParallelReScanned: s.ParallelReScanned,
		BPEPieces: s.BPEPieces, BPEFallbacks: s.BPEFallbacks,
		BPECacheHits: s.BPECacheHits, BPECacheMisses: s.BPECacheMisses,
		BPECacheEvictions: s.BPECacheEvictions,
	})
}

// statsVar adapts a Stats snapshot to expvar.Var, whose contract is
// that String returns valid JSON.
type statsVar struct{ s Stats }

func (v statsVar) String() string {
	b, err := json.Marshal(v.s)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Publish registers this snapshot in the process-wide expvar registry
// under name, rendering as the snapshot's JSON. Like expvar.Publish it
// panics if name is taken, so publish once per process; for a variable
// that tracks the tokenizer live, use Tokenizer.PublishStats.
func (s Stats) Publish(name string) { expvar.Publish(name, statsVar{s}) }

// PublishStats registers a live expvar under name: every read
// re-aggregates the tokenizer's counters at that moment.
func (t *Tokenizer) PublishStats(name string) {
	expvar.Publish(name, expvar.Func(func() any { return t.AggregateStats() }))
}

// EngineInfo describes the execution engine a Tokenizer selected: the
// mode name, the lookahead bound K, how many states carry bulk run-skip
// acceleration, the memory footprint of the precomputed tables, and
// whether the token-extension DFA is determinized lazily.
type EngineInfo struct {
	// Mode is "fused-k0", "fused-k1", or "fused-general" when the fused
	// action-table engine is active; "split-k0", "split-k1",
	// "split-general", or "split-general-lazy" for the interpreter
	// loops. All modes emit byte-identical token streams.
	Mode string
	// K is the lookahead bound (the grammar's max-TND).
	K int
	// AccelStates is how many fused states were marked for bulk run
	// skipping (0 when the fused engine is off).
	AccelStates int
	// TableBytes is the memory footprint of the precomputed automata and
	// action tables — the entire stream-independent state apart from the
	// input buffer and the K-byte delay ring.
	TableBytes int
	// LazyTeDFA reports whether the token-extension DFA is determinized
	// on demand (the eager table blew past Options.MaxTeDFAStates).
	LazyTeDFA bool
}

// Engine reports the execution engine this tokenizer selected. For a
// vocabulary source the mode is "bpe+" plus the pretokenizer engine's
// mode, K and the accel count are the pretokenizer's, and TableBytes
// adds the vocab DFA table to the pretokenizer's tables.
func (t *Tokenizer) Engine() EngineInfo {
	if t.bpe != nil {
		mode := t.bpe.EngineMode()
		return EngineInfo{
			Mode:        mode,
			K:           t.bpe.K(),
			AccelStates: t.inner.AccelStates(),
			TableBytes:  t.bpe.TableBytes(),
			LazyTeDFA:   strings.HasSuffix(mode, "-lazy"),
		}
	}
	mode := t.inner.EngineMode()
	return EngineInfo{
		Mode:        mode,
		K:           t.inner.K(),
		AccelStates: t.inner.AccelStates(),
		TableBytes:  t.inner.TableBytes(),
		LazyTeDFA:   strings.HasSuffix(mode, "-lazy"),
	}
}

// String renders the engine description on one line.
func (e EngineInfo) String() string {
	lazy := ""
	if e.LazyTeDFA {
		lazy = ", lazy TeDFA"
	}
	return fmt.Sprintf("%s (K=%d, accel states %d, tables %d B%s)",
		e.Mode, e.K, e.AccelStates, e.TableBytes, lazy)
}

// MarshalJSON renders the engine description with stable snake_case
// keys (shared by tnd -json and cmd/streamtok -stats).
func (e EngineInfo) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Mode        string `json:"mode"`
		K           int    `json:"k"`
		AccelStates int    `json:"accel_states"`
		TableBytes  int    `json:"table_bytes"`
		LazyTeDFA   bool   `json:"lazy_tedfa"`
	}{e.Mode, e.K, e.AccelStates, e.TableBytes, e.LazyTeDFA})
}
