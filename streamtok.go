// Package streamtok is a streaming maximal-munch tokenizer with static
// grammar analysis, implementing Li, Yang & Mamouras, "Static Analysis for
// Efficient Streaming Tokenization" (ASPLOS 2026).
//
// A tokenization grammar is a list of regular expressions (rules); the
// tokenizer splits an input stream into tokens under the maximal-munch
// (longest match, earliest rule) policy. The package provides:
//
//   - a static analysis (Analyze) computing the grammar's maximum token
//     neighbor distance (max-TND), the semantic quantity that determines
//     whether bounded-memory streaming tokenization is possible;
//   - StreamTok (New/Tokenizer), a backtracking-free O(n) streaming
//     tokenizer for grammars with finite max-TND, with memory use
//     independent of the stream length;
//   - the baselines the paper evaluates against: the flex-style
//     backtracking algorithm, Reps' memoized tokenizer, and the offline
//     two-pass ExtOracle;
//   - a catalog of grammars for common data formats (JSON, CSV, TSV, XML,
//     YAML, FASTA, DNS zones, system logs);
//   - a BPE/LLM tokenization frontend (Vocab): tiktoken rank files and
//     Hugging Face tokenizer.json vocabularies compile to streaming
//     exact-BPE tokenizers through the same pipeline.
//
// Compile is the primary constructor: it accepts any Source — a
// *Grammar, a *Vocab, or a MachineFile handle — and every frontend
// yields the same Tokenizer, certified by the same static analysis.
//
// Quick start:
//
//	g, _ := streamtok.ParseGrammar(`[0-9]+`, `[a-z]+`, `[ \t\n]+`)
//	tok, _ := streamtok.Compile(g, streamtok.Options{Minimize: true})
//	tok.Tokenize(os.Stdin, 0, func(t streamtok.Token, text []byte) {
//	    fmt.Printf("%d: %q\n", t.Rule, text)
//	})
//
// New(g) is sugar for exactly that Compile call. For LLM tokenization,
// compile a vocabulary instead of a grammar:
//
//	v, _ := streamtok.LoadVocab("cl100k_base.tiktoken")
//	tok, _ := streamtok.Compile(v, streamtok.Options{})
//	tok.Tokenize(os.Stdin, 0, func(t streamtok.Token, _ []byte) {
//	    fmt.Println(t.Rule) // the BPE rank
//	})
package streamtok

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"streamtok/internal/analysis"
	"streamtok/internal/analysis/cert"
	"streamtok/internal/bpe"
	"streamtok/internal/core"
	"streamtok/internal/grammars"
	"streamtok/internal/tepath"
	"streamtok/internal/tokdfa"
	"streamtok/internal/token"
)

// Token is one output token: its location in the stream and the rule id
// that matched it (the least index among the longest matches).
type Token = token.Token

// EmitFunc receives each token as it is confirmed maximal. text holds the
// token's bytes and is valid only until the next tokenizer call.
type EmitFunc = core.EmitFunc

// BatchFunc receives tokens in batches (FeedBatch/CloseBatch): the hot
// loop buffers confirmed tokens and flushes them together, trading one
// indirect call per token for one per batch. The slice is reused across
// calls — copy it out to retain it. Tokens carry offsets only; slice the
// input yourself if you need text.
type BatchFunc = core.BatchFunc

// Grammar is a tokenization grammar: an ordered, nonempty list of rules.
type Grammar struct {
	g *tokdfa.Grammar
}

// ParseGrammar parses one regular expression per rule, in PCRE-ish syntax
// (classes, ranges, negation, ., escapes, |, *, +, ?, {m,n}).
func ParseGrammar(rules ...string) (*Grammar, error) {
	g, err := tokdfa.ParseGrammar(rules...)
	if err != nil {
		return nil, err
	}
	return &Grammar{g: g}, nil
}

// MustParseGrammar is ParseGrammar that panics on error.
func MustParseGrammar(rules ...string) *Grammar {
	g, err := ParseGrammar(rules...)
	if err != nil {
		panic(err)
	}
	return g
}

// Named assigns names to the rules, in order, and returns the grammar.
func (g *Grammar) Named(names ...string) *Grammar {
	g.g.Named(names...)
	return g
}

// RuleName returns the name of rule id beta.
func (g *Grammar) RuleName(beta int) string { return g.g.RuleName(beta) }

// NumRules returns the number of rules.
func (g *Grammar) NumRules() int { return len(g.g.Rules) }

// Rules returns the grammar's rules re-rendered as parseable regex
// source, in order. The rendering is canonical for a parsed grammar
// (parse → render → parse is a fixpoint), which is what makes Hash a
// stable identity for caches.
func (g *Grammar) Rules() []string {
	out := make([]string, len(g.g.Rules))
	for i := range out {
		out[i] = g.g.RuleSource(i)
	}
	return out
}

// Hash returns a stable hex identity for the grammar: a SHA-256 over
// the rule names and canonical rule sources, in order. Two grammars
// hash equal exactly when they have the same rules (same regexes, same
// order, same names) — the key the serving registry caches compiled
// tokenizers under, and the identity resource certificates bind to.
func (g *Grammar) Hash() string { return g.g.Hash() }

// String renders the grammar as r_0 | r_1 | ... .
func (g *Grammar) String() string { return g.g.String() }

// Catalog lists the built-in grammar names (json, csv, tsv, xml, yaml,
// fasta, dns, log, sql-inserts, and the unbounded c, r, sql,
// csv-rfc4180).
func Catalog() []string { return grammars.Names() }

// CatalogGrammar returns a built-in grammar by name.
func CatalogGrammar(name string) (*Grammar, error) {
	spec, err := grammars.Lookup(name)
	if err != nil {
		return nil, err
	}
	return &Grammar{g: spec.Grammar()}, nil
}

// Analysis is the result of the static analysis of a grammar.
type Analysis struct {
	// MaxTND is the maximum token neighbor distance; valid only when
	// Bounded is true.
	MaxTND int
	// Bounded reports whether MaxTND is finite — i.e. whether StreamTok
	// applies to the grammar.
	Bounded bool
	// NFASize and DFASize are the automaton sizes (DFASize is of the
	// minimized tokenization DFA).
	NFASize int
	DFASize int
	// WitnessU and WitnessV, when Bounded and MaxTND > 0, are a token
	// neighbor pair realizing the maximum distance: both are tokens,
	// WitnessU is a strict prefix of WitnessV, nothing between them is
	// a token, and len(WitnessV)-len(WitnessU) == MaxTND.
	WitnessU []byte
	WitnessV []byte
}

// TND renders the distance alone: the number, or "inf" when unbounded.
func (a Analysis) TND() string {
	if !a.Bounded {
		return "inf"
	}
	return fmt.Sprintf("%d", a.MaxTND)
}

// String renders the analysis on one line: the distance and the
// automaton sizes it was computed from.
func (a Analysis) String() string {
	return fmt.Sprintf("max-TND %s (NFA %d, DFA %d)", a.TND(), a.NFASize, a.DFASize)
}

// MarshalJSON renders the analysis with stable snake_case keys (shared
// by tnd -json); max_tnd is null when the distance is unbounded, and
// the witness pair appears only when one exists.
func (a Analysis) MarshalJSON() ([]byte, error) {
	var maxTND *int
	if a.Bounded {
		maxTND = &a.MaxTND
	}
	return json.Marshal(struct {
		MaxTND    *int   `json:"max_tnd"`
		Bounded   bool   `json:"bounded"`
		NFAStates int    `json:"nfa_states"`
		DFAStates int    `json:"dfa_states"`
		WitnessU  string `json:"witness_u,omitempty"`
		WitnessV  string `json:"witness_v,omitempty"`
	}{maxTND, a.Bounded, a.NFASize, a.DFASize, string(a.WitnessU), string(a.WitnessV)})
}

// Analyze runs the Fig. 3 static analysis: it compiles the grammar to its
// tokenization DFA (minimized) and computes the max-TND.
func Analyze(g *Grammar) (Analysis, error) {
	m, err := tokdfa.Compile(g.g, tokdfa.Options{Minimize: true})
	if err != nil {
		return Analysis{}, err
	}
	res := analysis.Analyze(m)
	out := Analysis{
		MaxTND:  res.MaxTND,
		Bounded: res.Bounded(),
		NFASize: res.NFASize,
		DFASize: res.DFASize,
	}
	if u, v, ok := analysis.WitnessStrings(m, res); ok {
		out.WitnessU, out.WitnessV = u, v
	}
	return out, nil
}

// ErrUnbounded is reported (wrapped) by New when the grammar's max-TND is
// infinite and StreamTok therefore cannot tokenize it in bounded memory.
var ErrUnbounded = errors.New("streamtok: grammar has unbounded max token neighbor distance")

// Options configures tokenizer construction.
type Options struct {
	// Minimize minimizes the tokenization DFA (default true via New;
	// set by NewWithOptions callers explicitly).
	Minimize bool
	// MaxTeDFAStates caps the token-extension DFA size (0 = default).
	MaxTeDFAStates int
	// DisableFused keeps the split interpreter loops instead of the fused
	// action-table engine (for ablation; the engines emit byte-identical
	// token streams).
	DisableFused bool
	// MaxFusedTableBytes caps the resident bytes of the fused action
	// tables (0 = the 16 MB default). Grammars whose fused tables exceed
	// the cap serve from the split loops instead — same token stream,
	// smaller footprint. Tables are byte-class compressed, so the cap is
	// checked against C-column tables (C = byte-class count), letting far
	// larger grammars stay fused than the dense layout would.
	MaxFusedTableBytes int
}

// Certificate is a statically derived resource certificate: the
// machine-checkable cost claims (delay K with witness, ring/carry/table
// byte bounds, accel coverage, parallel rework factor) for one grammar
// on the engine the tokenizer selected. See internal/analysis/cert for
// the claim-by-claim documentation and the verification rules.
type Certificate = cert.Certificate

// Tokenizer is a compiled StreamTok tokenizer. It is immutable and safe
// for concurrent use; each concurrent stream needs its own Streamer.
//
// For a grammar source, inner is the engine tokenizing the grammar
// itself. For a vocabulary source, bpe carries the BPE pipeline and
// inner is its pretokenizer engine — which is what the observability
// counters aggregate over (streams, bytes, pieces-as-tokens), while the
// token-emitting entry points dispatch to the BPE path.
type Tokenizer struct {
	inner    *core.Tokenizer
	bpe      *bpe.Tokenizer // non-nil iff compiled from a *Vocab
	an       Analysis
	cert     *Certificate
	wrapPool sync.Pool // recycles the Streamer wrapper structs
}

// New compiles g, runs the static analysis, and builds the StreamTok
// tokenizer. It is sugar for Compile(g, Options{Minimize: true}) and
// fails with an error wrapping ErrUnbounded when the grammar's max-TND
// is infinite.
func New(g *Grammar) (*Tokenizer, error) {
	return Compile(g, Options{Minimize: true})
}

// NewWithOptions is New with explicit options: sugar for
// Compile(g, opts).
func NewWithOptions(g *Grammar, opts Options) (*Tokenizer, error) {
	return Compile(g, opts)
}

// newWithOptions is the grammar frontend's compilation pipeline.
func newWithOptions(g *Grammar, opts Options) (*Tokenizer, error) {
	m, err := tokdfa.Compile(g.g, tokdfa.Options{Minimize: opts.Minimize})
	if err != nil {
		return nil, err
	}
	res := analysis.Analyze(m)
	if !res.Bounded() {
		return nil, fmt.Errorf("%w (grammar %s)", ErrUnbounded, g.g.String())
	}
	limits := tepath.Limits{MaxDFAStates: opts.MaxTeDFAStates}
	var inner *core.Tokenizer
	if opts.DisableFused {
		inner, err = core.NewSplitWithK(m, res.MaxTND, limits)
	} else {
		inner, err = core.NewWithKBudget(m, res.MaxTND, limits, opts.MaxFusedTableBytes)
	}
	if err != nil {
		return nil, err
	}
	c, err := cert.New(m, res, inner)
	if err != nil {
		return nil, err
	}
	return &Tokenizer{
		inner: inner,
		cert:  c,
		an: Analysis{
			MaxTND:  res.MaxTND,
			Bounded: true,
			NFASize: res.NFASize,
			DFASize: res.DFASize,
		},
	}, nil
}

// Analysis returns the static-analysis result the tokenizer was built
// from.
func (t *Tokenizer) Analysis() Analysis { return t.an }

// Certificate returns the tokenizer's resource certificate: the
// statically derived, machine-checkable cost bounds for this grammar on
// the engine the tokenizer selected. Never nil for a built tokenizer.
func (t *Tokenizer) Certificate() *Certificate { return t.cert }

// K returns the lookahead bound (the grammar's max-TND; for a
// vocabulary source, the pretokenizer's).
func (t *Tokenizer) K() int { return t.inner.K() }

// Vocab returns the vocabulary this tokenizer was compiled from, or nil
// when the source was a grammar or machine file. When non-nil,
// Token.Rule values are BPE ranks into it.
func (t *Tokenizer) Vocab() *Vocab {
	if t.bpe == nil {
		return nil
	}
	return &Vocab{v: t.bpe.Vocab()}
}

// Tokenize reads the stream block-by-block (bufSize bytes per read; 0
// means the 64 KB default) and calls emit for every maximal token. It
// returns the offset of the first untokenized byte — the stream length
// when the whole stream tokenized — and any read error.
func (t *Tokenizer) Tokenize(r io.Reader, bufSize int, emit EmitFunc) (rest int, err error) {
	if t.bpe != nil {
		return t.bpe.TokenizeContext(context.Background(), r, bufSize, emit)
	}
	return t.inner.TokenizeContext(context.Background(), r, bufSize, emit)
}

// TokenizeContext is Tokenize with cancellation: ctx is checked between
// read blocks (never inside the feed loop), so a cancelled or timed-out
// context stops the stream at a chunk boundary and returns ctx.Err()
// along with the offset reached.
func (t *Tokenizer) TokenizeContext(ctx context.Context, r io.Reader, bufSize int, emit EmitFunc) (rest int, err error) {
	if t.bpe != nil {
		return t.bpe.TokenizeContext(ctx, r, bufSize, emit)
	}
	return t.inner.TokenizeContext(ctx, r, bufSize, emit)
}

// BoundaryFunc is the per-chunk hook of TokenizeContextChunks: it
// receives the total bytes consumed after each fed block and may stop
// the stream at that chunk boundary by returning an error.
type BoundaryFunc = core.BoundaryFunc

// TokenizeContextChunks is TokenizeContext with a chunk-boundary hook:
// after each fed block, boundary (when non-nil) receives the total
// bytes consumed so far and may stop the stream by returning an error,
// which is returned along with the offset reached. This is how the
// serving layer enforces max-bytes admission limits and flushes
// responses in step with the input — limits cut at chunk boundaries,
// never inside the feed loop.
func (t *Tokenizer) TokenizeContextChunks(ctx context.Context, r io.Reader, bufSize int, emit EmitFunc, boundary BoundaryFunc) (rest int, err error) {
	if t.bpe != nil {
		return t.bpe.TokenizeContextChunks(ctx, r, bufSize, emit, boundary)
	}
	return t.inner.TokenizeContextChunks(ctx, r, bufSize, emit, boundary)
}

// TokenizeBytes tokenizes an in-memory input and returns the tokens and
// the offset of the first untokenized byte.
func (t *Tokenizer) TokenizeBytes(input []byte) ([]Token, int) {
	if t.bpe != nil {
		return t.bpe.TokenizeBytes(input)
	}
	return t.inner.TokenizeBytes(input)
}

// Streamer is a push-mode tokenizer for one stream: call Feed with chunks
// as they arrive and Close at end of stream.
type Streamer struct {
	inner *core.Streamer
	b     *bpe.Stream // non-nil iff the tokenizer was compiled from a *Vocab
	tok   *Tokenizer  // owner, for rule names in Stats snapshots
}

// NewStreamer starts a fresh stream.
func (t *Tokenizer) NewStreamer() *Streamer {
	if t.bpe != nil {
		b := t.bpe.NewStream()
		return &Streamer{inner: b.PretokStreamer(), b: b, tok: t}
	}
	return &Streamer{inner: t.inner.NewStreamer(), tok: t}
}

// AcquireStreamer returns a streamer for a fresh stream, reusing a
// previously released one when available. A warm streamer keeps its
// carry buffer, delay ring, scratch space, and counters, so the
// steady-state serving loop (acquire, feed, close, release) performs no
// heap allocations. Pair every acquire with ReleaseStreamer.
func (t *Tokenizer) AcquireStreamer() *Streamer {
	if t.bpe != nil {
		b := t.bpe.AcquireStream()
		if v := t.wrapPool.Get(); v != nil {
			s := v.(*Streamer)
			s.inner, s.b = b.PretokStreamer(), b
			return s
		}
		return &Streamer{inner: b.PretokStreamer(), b: b, tok: t}
	}
	if v := t.wrapPool.Get(); v != nil {
		s := v.(*Streamer)
		s.inner = t.inner.AcquireStreamer()
		return s
	}
	return &Streamer{inner: t.inner.AcquireStreamer(), tok: t}
}

// ReleaseStreamer recycles s for a future AcquireStreamer, folding its
// stream's counters into the tokenizer's observability aggregate if the
// stream did not already finish. s must have come from this tokenizer
// and must not be used after release.
func (t *Tokenizer) ReleaseStreamer(s *Streamer) {
	if s == nil || s.tok != t || s.inner == nil {
		return
	}
	if s.b != nil {
		t.bpe.ReleaseStream(s.b)
		s.inner, s.b = nil, nil
		t.wrapPool.Put(s)
		return
	}
	t.inner.ReleaseStreamer(s.inner)
	s.inner = nil
	t.wrapPool.Put(s)
}

// Feed pushes a chunk through the tokenizer, emitting any tokens whose
// maximality the chunk confirms. Each byte is examined O(1) times; no
// backtracking occurs.
func (s *Streamer) Feed(chunk []byte, emit EmitFunc) {
	if s.b != nil {
		s.b.Feed(chunk, emit)
		return
	}
	s.inner.Feed(chunk, emit)
}

// FeedBatch is Feed with batched emission: tokens are buffered and sink
// is invoked with batches of them (at buffer pressure and once at the
// chunk boundary), cutting the per-token indirect-call overhead on
// token-dense streams. The token stream is identical to Feed's.
func (s *Streamer) FeedBatch(chunk []byte, sink BatchFunc) {
	if s.b != nil {
		s.b.FeedBatch(chunk, sink)
		return
	}
	s.inner.FeedBatch(chunk, sink)
}

// Close signals end of stream, drains the delayed lookahead bytes, and
// returns the offset of the first untokenized byte.
func (s *Streamer) Close(emit EmitFunc) int {
	if s.b != nil {
		return s.b.Close(emit)
	}
	return s.inner.Close(emit)
}

// CloseBatch is Close with batched emission of the drained tail tokens.
func (s *Streamer) CloseBatch(sink BatchFunc) int {
	if s.b != nil {
		return s.b.CloseBatch(sink)
	}
	return s.inner.CloseBatch(sink)
}

// Reset abandons the current stream (its counters still reach the
// tokenizer aggregate) and makes the streamer ready for a fresh one,
// reusing every buffer it holds.
func (s *Streamer) Reset() {
	if s.b != nil {
		s.b.Reset()
		return
	}
	s.inner.Reset()
}

// Stopped reports whether tokenization terminated early because the
// remaining input matches no rule.
func (s *Streamer) Stopped() bool { return s.inner.Stopped() }

// Rest returns the offset of the first untokenized byte; it is
// meaningful once Stopped reports true or Close has been called.
func (s *Streamer) Rest() int { return s.inner.Rest() }

// Offset returns the absolute stream offset of the next byte Feed will
// consume — the total bytes fed into the logical stream, including any
// suspended segments before a Resume.
func (s *Streamer) Offset() int { return s.inner.Offset() }

// PendingStart returns the stream offset where the pending (not yet
// emitted) token begins — always a true token boundary, and the offset
// a cursor taken now would resume from.
func (s *Streamer) PendingStart() int { return s.inner.PendingStart() }
