package streamtok_test

import (
	"bytes"
	"strings"
	"testing"

	"streamtok"
)

// TestAcquireReleasePublic: the pooled serving loop on the public API —
// acquired streamers start pristine, produce the same stream as fresh
// ones, and survive release/reacquire cycles.
func TestAcquireReleasePublic(t *testing.T) {
	tok, err := streamtok.New(streamtok.MustParseGrammar(`[0-9]+`, `[a-z]+`, `[ ]+`))
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ab 12 cd 34 ef")
	want, wantRest := tok.TokenizeBytes(input)
	for round := 0; round < 3; round++ {
		s := tok.AcquireStreamer()
		var got []streamtok.Token
		s.Feed(input, func(tk streamtok.Token, _ []byte) { got = append(got, tk) })
		rest := s.Close(func(tk streamtok.Token, _ []byte) { got = append(got, tk) })
		tok.ReleaseStreamer(s)
		if rest != wantRest || len(got) != len(want) {
			t.Fatalf("round %d: %d tokens rest %d, want %d rest %d", round, len(got), rest, len(want), wantRest)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d token %d = %+v, want %+v", round, i, got[i], want[i])
			}
		}
	}
	// Double release and release of nil are harmless no-ops.
	s := tok.AcquireStreamer()
	tok.ReleaseStreamer(s)
	tok.ReleaseStreamer(s)
	tok.ReleaseStreamer(nil)
}

// TestBatchPublic: FeedBatch/CloseBatch deliver the same tokens as the
// per-token emit path, and Reset reuses the streamer for a new stream.
func TestBatchPublic(t *testing.T) {
	tok, err := streamtok.New(streamtok.MustParseGrammar(`[0-9]+`, `[ ]+`))
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("12 345 6 789")
	want, wantRest := tok.TokenizeBytes(input)
	s := tok.AcquireStreamer()
	defer tok.ReleaseStreamer(s)
	for round := 0; round < 2; round++ {
		var got []streamtok.Token
		sink := func(batch []streamtok.Token) { got = append(got, batch...) }
		s.FeedBatch(input[:5], sink)
		s.FeedBatch(input[5:], sink)
		rest := s.CloseBatch(sink)
		if rest != wantRest || len(got) != len(want) {
			t.Fatalf("round %d: %d tokens rest %d, want %d rest %d", round, len(got), rest, len(want), wantRest)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d token %d = %+v, want %+v", round, i, got[i], want[i])
			}
		}
		if s.Rest() != wantRest {
			t.Fatalf("round %d: Rest() = %d, want %d", round, s.Rest(), wantRest)
		}
		s.Reset()
	}
}

// TestTokenizeParallelReaderPublic: the pipelined reader matches
// TokenizeBytes on a catalog grammar, including stats plumbing.
func TestTokenizeParallelReaderPublic(t *testing.T) {
	g, err := streamtok.CatalogGrammar("log")
	if err != nil {
		t.Fatal(err)
	}
	tok, err := streamtok.New(g)
	if err != nil {
		t.Fatal(err)
	}
	line := "2026-02-03T04:05:06Z host proc[17]: something happened code=42\n"
	input := []byte(strings.Repeat(line, 4000))
	want, wantRest := tok.TokenizeBytes(input)
	var got []streamtok.Token
	rest, stats, err := tok.TokenizeParallelReader(bytes.NewReader(input), 4,
		func(tk streamtok.Token, text []byte) {
			if !bytes.Equal(text, input[tk.Start:tk.End]) {
				t.Fatalf("token %+v text mismatch", tk)
			}
			got = append(got, tk)
		})
	if err != nil {
		t.Fatal(err)
	}
	if rest != wantRest || len(got) != len(want) {
		t.Fatalf("%d tokens rest %d, want %d rest %d (stats %+v)", len(got), rest, len(want), wantRest, stats)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.Segments < 1 {
		t.Fatalf("stats not plumbed: %+v", stats)
	}
}
