package streamtok_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"streamtok"
)

// TestQuickstart is the README example.
func TestQuickstart(t *testing.T) {
	g, err := streamtok.ParseGrammar(`[0-9]+`, `[a-z]+`, `[ \t\n]+`)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := streamtok.New(g)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	rest, err := tok.Tokenize(strings.NewReader("abc 123 de45"), 0,
		func(tk streamtok.Token, text []byte) {
			got = append(got, string(text))
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"abc", " ", "123", " ", "de", "45"}
	if rest != 12 || len(got) != len(want) {
		t.Fatalf("rest %d tokens %v", rest, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestAnalyzeAPI checks the public analysis surface on the paper's
// Example 9 grammars.
func TestAnalyzeAPI(t *testing.T) {
	bounded := streamtok.MustParseGrammar(`[0-9]+([eE][+-]?[0-9]+)?`, `[ ]+`)
	a, err := streamtok.Analyze(bounded)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Bounded || a.MaxTND != 3 || a.TND() != "3" {
		t.Errorf("analysis %+v, want bounded max-TND 3", a)
	}
	if a.String() != fmt.Sprintf("max-TND 3 (NFA %d, DFA %d)", a.NFASize, a.DFASize) {
		t.Errorf("String() = %q", a.String())
	}
	unbounded := streamtok.MustParseGrammar(`[0-9]*0`, `[ ]+`)
	a, err = streamtok.Analyze(unbounded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bounded || a.TND() != "inf" {
		t.Errorf("analysis %+v, want unbounded", a)
	}
	if _, err := streamtok.New(unbounded); !errors.Is(err, streamtok.ErrUnbounded) {
		t.Errorf("New(unbounded) error = %v, want ErrUnbounded", err)
	}
}

// TestCatalogAPI: every bounded catalog grammar builds a Tokenizer and
// round-trips a streamer.
func TestCatalogAPI(t *testing.T) {
	names := streamtok.Catalog()
	if len(names) < 10 {
		t.Fatalf("catalog too small: %v", names)
	}
	g, err := streamtok.CatalogGrammar("json")
	if err != nil {
		t.Fatal(err)
	}
	tok, err := streamtok.New(g)
	if err != nil {
		t.Fatal(err)
	}
	if tok.K() != 3 {
		t.Errorf("json K = %d, want 3", tok.K())
	}
	in := []byte(`{"a": [1, 2.5e-3], "b": "x"}`)
	toks, rest := tok.TokenizeBytes(in)
	if rest != len(in) || len(toks) == 0 {
		t.Fatalf("TokenizeBytes: %d tokens, rest %d", len(toks), rest)
	}
	if g.RuleName(toks[0].Rule) != "PUNCT" {
		t.Errorf("first token rule %q", g.RuleName(toks[0].Rule))
	}
	if _, err := streamtok.CatalogGrammar("nope"); err == nil {
		t.Error("CatalogGrammar(nope) should fail")
	}
}

// TestBaselinesAgree: the four public engines agree on a realistic input.
func TestBaselinesAgree(t *testing.T) {
	g := streamtok.MustParseGrammar(`[0-9]+(\.[0-9]+)?`, `[a-z]+`, `[ ,\n]+`)
	input := []byte("abc 12.5, xyz 7 0.25\nrest 99")

	want, wantRest, err := streamtok.ReferenceTokens(g, input)
	if err != nil {
		t.Fatal(err)
	}

	collect := func(run func(emit streamtok.EmitFunc) int) []streamtok.Token {
		var toks []streamtok.Token
		rest := run(func(tk streamtok.Token, _ []byte) { toks = append(toks, tk) })
		if rest != wantRest {
			t.Fatalf("rest %d, want %d", rest, wantRest)
		}
		return toks
	}

	st, err := streamtok.New(g)
	if err != nil {
		t.Fatal(err)
	}
	flex, err := streamtok.NewFlexScanner(g)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := streamtok.NewRepsTokenizer(g)
	if err != nil {
		t.Fatal(err)
	}
	eo, err := streamtok.NewExtOracleTokenizer(g)
	if err != nil {
		t.Fatal(err)
	}

	results := map[string][]streamtok.Token{
		"streamtok": collect(func(e streamtok.EmitFunc) int {
			toks, rest := st.TokenizeBytes(input)
			for _, tk := range toks {
				e(tk, nil)
			}
			return rest
		}),
		"flex": collect(func(e streamtok.EmitFunc) int {
			rest, err := flex.Tokenize(bytes.NewReader(input), 8, e)
			if err != nil {
				t.Fatal(err)
			}
			return rest
		}),
		"flex-scan": collect(func(e streamtok.EmitFunc) int { return flex.ScanBytes(input, e) }),
		"reps":      collect(func(e streamtok.EmitFunc) int { return rp.TokenizeBytes(input, e) }),
		"extoracle": collect(func(e streamtok.EmitFunc) int { return eo.TokenizeBytes(input, e) }),
	}
	for name, got := range results {
		if len(got) != len(want) {
			t.Fatalf("%s: %d tokens, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: token %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestStreamerPush: the push API across chunk boundaries.
func TestStreamerPush(t *testing.T) {
	tok, err := streamtok.New(streamtok.MustParseGrammar(`[0-9]+(\.[0-9]+)?`, `[ ]`))
	if err != nil {
		t.Fatal(err)
	}
	s := tok.NewStreamer()
	var texts []string
	emit := func(_ streamtok.Token, text []byte) { texts = append(texts, string(text)) }
	for _, b := range []byte("3.14 42") {
		s.Feed([]byte{b}, emit)
	}
	rest := s.Close(emit)
	if rest != 7 {
		t.Fatalf("rest %d", rest)
	}
	want := []string{"3.14", " ", "42"}
	if len(texts) != 3 || texts[0] != want[0] || texts[1] != want[1] || texts[2] != want[2] {
		t.Fatalf("tokens %v, want %v", texts, want)
	}
	if s.Stopped() != true {
		t.Error("Stopped should be true after Close")
	}
}

// TestParseErrors surface offsets and messages.
func TestParseErrors(t *testing.T) {
	if _, err := streamtok.ParseGrammar(`a(`); err == nil {
		t.Error("unclosed group should fail")
	}
	if _, err := streamtok.ParseGrammar(); err == nil {
		t.Error("empty grammar should fail")
	}
	if _, err := streamtok.ParseGrammar(`[z-a]`); err == nil {
		t.Error("bad range should fail")
	}
}

// TestSaveLoadCompiled: the compile-once/ship-tables flow round-trips.
func TestSaveLoadCompiled(t *testing.T) {
	g := streamtok.MustParseGrammar(`[0-9]+(\.[0-9]+)?`, `[ ]+`).Named("NUM", "WS")
	var buf bytes.Buffer
	if err := streamtok.SaveCompiled(g, &buf); err != nil {
		t.Fatal(err)
	}
	tok, g2, err := streamtok.LoadCompiled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.RuleName(0) != "NUM" || tok.K() != 2 {
		t.Errorf("loaded: rule %q K %d", g2.RuleName(0), tok.K())
	}
	input := []byte("3.14 42")
	toks, rest := tok.TokenizeBytes(input)
	want, wantRest, err := streamtok.ReferenceTokens(g, input)
	if err != nil {
		t.Fatal(err)
	}
	if rest != wantRest || len(toks) != len(want) {
		t.Fatalf("loaded machine tokenizes differently: %v vs %v", toks, want)
	}
	// Unbounded machines load the grammar but refuse a tokenizer.
	gu := streamtok.MustParseGrammar(`[0-9]*0`, `[ ]+`)
	buf.Reset()
	if err := streamtok.SaveCompiled(gu, &buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := streamtok.LoadCompiled(&buf); !errors.Is(err, streamtok.ErrUnbounded) {
		t.Errorf("LoadCompiled(unbounded): %v", err)
	}
}

// TestTokenizeParallelPublic: the public parallel API matches the
// sequential tokenizer.
func TestTokenizeParallelPublic(t *testing.T) {
	g, err := streamtok.CatalogGrammar("log")
	if err != nil {
		t.Fatal(err)
	}
	tok, err := streamtok.New(g)
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("Jun 14 15:16:01 combo sshd[19939]: failure rhost=1.2.3.4\n"), 8000)
	want, wantRest := tok.TokenizeBytes(input)
	var got []streamtok.Token
	rest, stats := tok.TokenizeParallel(input, 4, func(tk streamtok.Token, _ []byte) {
		got = append(got, tk)
	})
	if rest != wantRest || len(got) != len(want) {
		t.Fatalf("parallel %d tokens rest %d, sequential %d rest %d (stats %+v)",
			len(got), rest, len(want), wantRest, stats)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	if stats.Segments == 0 {
		t.Error("expected parallel segments for a 170KB input")
	}
}

// TestEngineModeAPI: the public engine-selection knobs — New picks the
// fused engine for catalog grammars, DisableFused keeps the split loops,
// and both produce identical token streams.
func TestEngineModeAPI(t *testing.T) {
	g, err := streamtok.CatalogGrammar("json")
	if err != nil {
		t.Fatal(err)
	}
	fusedTok, err := streamtok.New(g)
	if err != nil {
		t.Fatal(err)
	}
	splitTok, err := streamtok.NewWithOptions(g, streamtok.Options{Minimize: true, DisableFused: true})
	if err != nil {
		t.Fatal(err)
	}
	fe, se := fusedTok.Engine(), splitTok.Engine()
	if !strings.HasPrefix(fe.Mode, "fused-") {
		t.Errorf("Engine().Mode = %q, want fused-*", fe.Mode)
	}
	if fe.AccelStates == 0 {
		t.Error("Engine().AccelStates = 0, want > 0 for json")
	}
	if !strings.HasPrefix(se.Mode, "split-") {
		t.Errorf("DisableFused Engine().Mode = %q, want split-*", se.Mode)
	}
	if se.AccelStates != 0 {
		t.Errorf("DisableFused Engine().AccelStates = %d, want 0", se.AccelStates)
	}
	if fe.TableBytes <= se.TableBytes {
		t.Errorf("fused TableBytes %d should exceed split %d", fe.TableBytes, se.TableBytes)
	}
	input := []byte(`{"alpha": [1, 2.5e3, "text"], "b": {"c": true}}`)
	ft, fr := fusedTok.TokenizeBytes(input)
	st, sr := splitTok.TokenizeBytes(input)
	if fr != sr || len(ft) != len(st) {
		t.Fatalf("fused (%d tokens, rest %d) vs split (%d tokens, rest %d)", len(ft), fr, len(st), sr)
	}
	for i := range ft {
		if ft[i] != st[i] {
			t.Errorf("token %d: fused %+v split %+v", i, ft[i], st[i])
		}
	}
}
