// csvstats infers a CSV file's per-column schema (int/float/bool/text)
// and basic statistics from the token stream alone — the paper's RQ5
// "CSV schema inference" task, streaming and allocation-light.
//
//	go run ./examples/csvstats < data.csv
//	go run ./examples/csvstats            # uses an embedded sample
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strings"

	"streamtok"
)

const sample = `id,name,score,active
1,alpha,99.5,true
2,"bravo, jr",87.25,false
3,charlie,12,true
`

// colType mirrors csvstat's widening lattice: int -> float -> text.
type colType int

const (
	typeInt colType = iota
	typeFloat
	typeBool
	typeText
)

func (t colType) String() string {
	return [...]string{"int", "float", "bool", "text"}[t]
}

type column struct {
	typ    colType
	seen   bool
	cells  int
	maxLen int
}

func main() {
	g, err := streamtok.CatalogGrammar("csv")
	if err != nil {
		log.Fatal(err)
	}
	tok, err := streamtok.New(g)
	if err != nil {
		log.Fatal(err)
	}

	// Rule ids of the catalog CSV grammar.
	const (
		ruleQuoted = 0
		ruleField  = 1
		ruleComma  = 2
		ruleEOL    = 3
	)

	var cols []column
	var header []string
	col, rows := 0, 0
	cell := func(text []byte) {
		if rows == 0 {
			// First record is the header (csvstat's default).
			header = append(header, string(text))
			return
		}
		for len(cols) <= col {
			cols = append(cols, column{})
		}
		c := &cols[col]
		ct := classify(text)
		if !c.seen {
			c.typ, c.seen = ct, true
		} else {
			c.typ = widen(c.typ, ct)
		}
		c.cells++
		if len(text) > c.maxLen {
			c.maxLen = len(text)
		}
	}

	rest, err := tok.Tokenize(input(), 0, func(t streamtok.Token, text []byte) {
		switch t.Rule {
		case ruleQuoted:
			cell(unquote(text))
		case ruleField:
			cell(text)
		case ruleComma:
			col++
		case ruleEOL:
			rows++
			col = 0
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rows: %d data + 1 header (consumed %d bytes)\n", rows-1, rest)
	fmt.Printf("%-10s %-6s %-6s %s\n", "column", "type", "cells", "max len")
	for i, c := range cols {
		name := fmt.Sprintf("col%d", i)
		if i < len(header) {
			name = header[i]
		}
		fmt.Printf("%-10s %-6s %-6d %d\n", name, c.typ, c.cells, c.maxLen)
	}
}

func classify(text []byte) colType {
	if s := string(text); s == "true" || s == "false" {
		return typeBool
	}
	digits, dots := 0, 0
	body := text
	if len(body) > 0 && (body[0] == '-' || body[0] == '+') {
		body = body[1:]
	}
	for _, b := range body {
		switch {
		case b >= '0' && b <= '9':
			digits++
		case b == '.':
			dots++
		default:
			return typeText
		}
	}
	switch {
	case digits > 0 && dots == 0:
		return typeInt
	case digits > 0 && dots == 1:
		return typeFloat
	default:
		return typeText
	}
}

func widen(a, b colType) colType {
	if a == b {
		return a
	}
	if (a == typeInt && b == typeFloat) || (a == typeFloat && b == typeInt) {
		return typeFloat
	}
	return typeText
}

// unquote strips the surrounding quotes (the streaming grammar makes the
// closing one optional) and collapses "" escapes.
func unquote(text []byte) []byte {
	body := text[1:]
	if len(body) > 0 && body[len(body)-1] == '"' {
		body = body[:len(body)-1]
	}
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		out = append(out, body[i])
		if body[i] == '"' {
			i++
		}
	}
	return out
}

func input() *bufio.Reader {
	if st, err := os.Stdin.Stat(); err == nil && st.Mode()&os.ModeCharDevice == 0 {
		return bufio.NewReader(os.Stdin)
	}
	return bufio.NewReader(strings.NewReader(sample))
}
