// jsonminify strips insignificant whitespace from a JSON stream without
// parsing it — the paper's motivating example of a simplified lexical
// grammar doing useful work (RQ5 reports a 5.4x end-to-end win for
// StreamTok on this task).
//
//	go run ./examples/jsonminify < big.json
//	go run ./examples/jsonminify          # uses an embedded sample
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strings"

	"streamtok"
)

const sample = `{
    "name" : "streamtok",
    "tags" : [ "lexing", "streaming" ],
    "size" : { "nfa" : 90, "dfa" : 28 },
    "ratio": 2.5e0
}
`

func main() {
	g, err := streamtok.CatalogGrammar("json")
	if err != nil {
		log.Fatal(err)
	}
	tok, err := streamtok.New(g)
	if err != nil {
		log.Fatal(err)
	}

	const ruleWS = 6 // WS rule id of the catalog JSON grammar
	in := input()
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	inBytes, outBytes := 0, 0
	rest, err := tok.Tokenize(in, 0, func(t streamtok.Token, text []byte) {
		inBytes += t.Len()
		if t.Rule == ruleWS {
			return
		}
		outBytes += len(text)
		out.Write(text)
	})
	if err != nil {
		log.Fatal(err)
	}
	out.Flush()
	fmt.Fprintf(os.Stderr, "\njsonminify: %d -> %d bytes (%.0f%%), consumed %d\n",
		inBytes, outBytes, 100*float64(outBytes)/float64(inBytes), rest)
}

func input() *bufio.Reader {
	if st, err := os.Stdin.Stat(); err == nil && st.Mode()&os.ModeCharDevice == 0 {
		return bufio.NewReader(os.Stdin)
	}
	return bufio.NewReader(strings.NewReader(sample))
}
