// parallelcount tokenizes a log stream with the speculative parallel
// engine (the paper's §8 future-work direction) and reports per-rule
// token counts plus how well segment speculation synchronized.
//
//	go run ./examples/parallelcount < /var/log/syslog
//	go run ./examples/parallelcount          # synthesizes a 4 MB log
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"streamtok"
	"streamtok/internal/workload"
)

func main() {
	g, err := streamtok.CatalogGrammar("log")
	if err != nil {
		log.Fatal(err)
	}
	tok, err := streamtok.New(g)
	if err != nil {
		log.Fatal(err)
	}

	input := readInput()
	counts := make([]int, g.NumRules())
	rest, stats := tok.TokenizeParallel(input, 0, func(t streamtok.Token, _ []byte) {
		counts[t.Rule]++
	})

	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Printf("input: %d bytes, %d tokens, consumed %d (GOMAXPROCS %d)\n",
		len(input), total, rest, runtime.GOMAXPROCS(0))
	for r, c := range counts {
		fmt.Printf("  %-8s %d\n", g.RuleName(r), c)
	}
	if stats.Segments > 0 {
		fmt.Printf("speculation: %d/%d segments synchronized, %d bytes re-scanned (%.2f%%)\n",
			stats.Synchronized, stats.Segments, stats.ReScanned,
			100*float64(stats.ReScanned)/float64(len(input)))
	} else {
		fmt.Println("input small enough to run sequentially")
	}
}

func readInput() []byte {
	if st, err := os.Stdin.Stat(); err == nil && st.Mode()&os.ModeCharDevice == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		return data
	}
	data, err := workload.Log("linux", 1, 4_000_000)
	if err != nil {
		log.Fatal(err)
	}
	return data
}
