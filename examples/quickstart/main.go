// Quickstart: define a grammar, run the static analysis, and tokenize a
// stream with StreamTok.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"streamtok"
)

func main() {
	// A tokenization grammar is an ordered list of regular expressions.
	// Ties between equally long matches go to the earliest rule.
	g, err := streamtok.ParseGrammar(
		`[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?`, // NUMBER
		`[A-Za-z_][A-Za-z0-9_]*`,              // IDENT
		`[-+*/=<>!]+`,                         // OP
		`[ \t\n]+`,                            // WS
	)
	if err != nil {
		log.Fatal(err)
	}
	g.Named("NUMBER", "IDENT", "OP", "WS")

	// The static analysis decides whether bounded-memory streaming
	// tokenization is possible, and how much lookahead it needs.
	a, err := streamtok.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max token neighbor distance: %s (NFA %d states, DFA %d states)\n",
		a.TND(), a.NFASize, a.DFASize)

	tok, err := streamtok.New(g)
	if err != nil {
		log.Fatal(err) // would wrap streamtok.ErrUnbounded
	}

	input := "x1 = 3.25e-2 + rate*7"
	fmt.Printf("input: %q\n", input)
	rest, err := tok.Tokenize(strings.NewReader(input), 0,
		func(t streamtok.Token, text []byte) {
			fmt.Printf("  %2d..%-2d %-6s %q\n", t.Start, t.End, g.RuleName(t.Rule), text)
		})
	if err != nil {
		log.Fatal(err)
	}
	if rest != len(input) {
		fmt.Printf("untokenizable remainder at offset %d\n", rest)
	}
}
