// logtotsv converts raw system logs to tab-separated records using only
// the token stream — the paper's RQ5 log-parsing pipeline. Each
// non-whitespace token becomes a field; each line becomes a TSV record.
//
//	go run ./examples/logtotsv < /var/log/syslog
//	go run ./examples/logtotsv            # uses an embedded sample
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strings"

	"streamtok"
)

const sample = `Jun 14 15:16:01 combo sshd(pam_unix)[19939]: authentication failure; rhost=218.188.2.4
Jun 14 15:16:02 combo sshd(pam_unix)[19937]: check pass; user unknown
Jun 15 02:04:59 combo su(pam_unix)[21416]: session opened for user cyrus by (uid=0)
`

func main() {
	g, err := streamtok.CatalogGrammar("log")
	if err != nil {
		log.Fatal(err)
	}
	tok, err := streamtok.New(g)
	if err != nil {
		log.Fatal(err)
	}

	in := input()
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	// Rule ids of the catalog log grammar.
	const (
		ruleWS  = 3
		ruleEOL = 4
	)
	first := true
	lines := 0
	rest, err := tok.Tokenize(in, 0, func(t streamtok.Token, text []byte) {
		switch t.Rule {
		case ruleWS:
			// separator — nothing to write
		case ruleEOL:
			out.WriteByte('\n')
			lines++
			first = true
		default:
			if !first {
				out.WriteByte('\t')
			}
			out.Write(text)
			first = false
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	out.Flush()
	fmt.Fprintf(os.Stderr, "logtotsv: %d lines converted, %d bytes consumed\n", lines, rest)
}

func input() *bufio.Reader {
	if st, err := os.Stdin.Stat(); err == nil && st.Mode()&os.ModeCharDevice == 0 {
		return bufio.NewReader(os.Stdin)
	}
	return bufio.NewReader(strings.NewReader(sample))
}
