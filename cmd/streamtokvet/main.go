// Command streamtokvet runs streamtok's repo-specific static checks
// (see internal/vet): streamer pool acquire/release pairing and
// chunk-level obs counters kept out of loops.
//
// It runs two ways:
//
//	streamtokvet ./...                     # standalone: walk and check the tree
//	go vet -vettool=$(which streamtokvet) ./...  # as a go vet analysis tool
//
// In vettool mode it speaks the cmd/go unit-checking protocol by hand
// (-V=full version stamp, -flags query, then one JSON .cfg argument per
// package) so it needs nothing outside the standard library. Exit
// status 0 when clean, 2 when findings are reported, 1 on usage or
// internal errors.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"streamtok/internal/vet"
)

func main() {
	args := os.Args[1:]
	// cmd/go probes the tool before using it: -V=full must print a
	// "name version <v>" line where <v> becomes part of the vet cache
	// key, and -flags must dump the supported analyzer flags as JSON.
	// Hash our own binary into the version so rebuilding the tool
	// (changed checks) invalidates cached vet results.
	if len(args) == 1 && args[0] == "-V=full" {
		fmt.Printf("streamtokvet version v0.0.0-%s\n", selfHash())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVettool(args[0]))
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: streamtokvet [./... | dirs | files.go] (or via go vet -vettool)")
		os.Exit(1)
	}
	os.Exit(runStandalone(args))
}

// selfHash returns a short content hash of the running executable, or a
// fixed stamp if it cannot be read (the tool still works, vet results
// just cache across rebuilds).
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unversioned"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unversioned"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// vetConfig is the subset of cmd/go's vet.cfg JSON the checks need:
// which files make up the package, and where to leave the facts file
// the protocol requires even though these checks export none.
type vetConfig struct {
	ID         string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamtokvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "streamtokvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	findings, err := checkFiles(cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamtokvet:", err)
		return 1
	}
	// The facts file must exist for cmd/go to cache the result; these
	// checks are local to each file, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "streamtokvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly || len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	return 2
}

func runStandalone(args []string) int {
	var files []string
	for _, arg := range args {
		expanded, err := expandArg(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamtokvet:", err)
			return 1
		}
		files = append(files, expanded...)
	}
	findings, err := checkFiles(files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamtokvet:", err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	return 2
}

// expandArg turns one command-line argument into Go files: a .go file
// is itself, a directory is its *.go entries, and dir/... walks the
// tree (skipping testdata and hidden directories, like cmd/go does).
func expandArg(arg string) ([]string, error) {
	if strings.HasSuffix(arg, ".go") {
		return []string{arg}, nil
	}
	root, recurse := arg, false
	if strings.HasSuffix(arg, "/...") {
		root, recurse = strings.TrimSuffix(arg, "/..."), true
	}
	if root == "" || root == "." {
		root = "."
	}
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (!recurse || name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

func checkFiles(files []string) ([]vet.Finding, error) {
	fset := token.NewFileSet()
	var all []vet.Finding
	for _, path := range files {
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		all = append(all, vet.CheckFile(fset, file)...)
	}
	return all, nil
}
