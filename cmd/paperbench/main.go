// Command paperbench regenerates the paper's tables and figures.
//
// Usage:
//
//	paperbench -exp fig8            # one experiment
//	paperbench -exp all -scale 10   # everything, at 10x input sizes
//	paperbench -list                # list experiments
//
// Output rows have the same shape as the paper's tables/figures; absolute
// numbers are hardware-dependent, the shapes (who wins, by what factor,
// where curves flatten) are the reproduction target.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"streamtok/internal/bench"
)

// writeJSON writes the table as BENCH_<name>.json in dir, the
// machine-readable artifact CI archives and gates on.
func writeJSON(dir, name string, t bench.Table) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote "+path)
}

func main() {
	exp := flag.String("exp", "", "experiment to run (table1, fig7a..fig11b, table2, rq6, or 'all')")
	scale := flag.Float64("scale", 1.0, "input-size multiplier (paper-scale streams need ~10)")
	seed := flag.Int64("seed", 2026, "workload seed")
	trials := flag.Int("trials", 3, "timed repetitions per cell (median reported)")
	jsonOut := flag.Bool("json", false, "also write each result as BENCH_<exp>.json (see -json-dir)")
	jsonDir := flag.String("json-dir", ".", "directory -json writes artifacts to")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Trials: *trials}
	if *exp == "all" {
		for _, e := range bench.Experiments() {
			tbl := e.Run(cfg)
			fmt.Println(tbl.Format())
			if *jsonOut {
				writeJSON(*jsonDir, e.Name, tbl)
			}
		}
		return
	}
	e, err := bench.LookupExperiment(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tbl := e.Run(cfg)
	fmt.Println(tbl.Format())
	if *jsonOut {
		writeJSON(*jsonDir, e.Name, tbl)
	}
}
