// Command benchdiff gates CI on benchmark regressions without gating on
// hardware: it compares one metric column of a fresh BENCH_<exp>.json
// against the committed baseline, row by row, and fails when the metric
// moved past a tolerance in the bad direction.
//
// Usage:
//
//	benchdiff -old BENCH_hotloop.json -new fresh/BENCH_hotloop.json \
//	    -key workload,grammar,mode -col speedup -tol 0.25
//	benchdiff -old BENCH_concurrency.json -new fresh/BENCH_concurrency.json \
//	    -key mode,N -col allocs/stream -lower-better -slack 2
//
// Rows are matched on the -key columns; rows present on only one side
// (a reduced-scale run drops the GOMAXPROCS row, a new machine adds
// one) are skipped, but zero matched rows is a failure — a gate that
// compares nothing protects nothing. Cells may carry unit suffixes
// ("1.54x", "83.3%"); the numeric prefix is compared.
//
// Categorical columns gate with -exact: the cells are compared as
// strings and any change fails. That is how CI pins bpe's engine-mode
// column — "bpe+fused-general" silently degrading to split is a
// regression no numeric tolerance can express. -tol, -slack, and
// -lower-better are ignored under -exact.
//
// The gate only trusts hardware-independent columns (ratios like
// hotloop's speedup, counts like concurrency's allocs/stream). Absolute
// MB/s on a shared CI runner is noise; don't point -col at it. This is
// also why CI never diffs BENCH_serverload.json: every one of its
// columns (req/s, p99 latency, drain time) is hardware-dependent, so
// the file is regenerated and uploaded as an artifact but deliberately
// has no gate — there is no stable ratio in it to compare.
//
// Two refinements for scaling gates:
//
//	benchdiff -new fresh/BENCH_multicore.json -key mode,workers \
//	    -col speedup -min 2.5 -only sharded-server/4
//
// -min replaces the baseline with an absolute one-sided floor: the
// fresh value must be at least -min, no -old involved. That is how a
// multi-core CI runner asserts live scaling that a baseline committed
// from a small host could never express. -only restricts either mode
// to the single row whose joined key matches (still failing on zero
// matched rows), so a floor meant for the 4-worker row cannot
// accidentally demand 2.5x of the workers=1 row.
//
// Setting the environment variable BENCHDIFF_SKIP (to anything) skips
// the comparison with exit 0 — the knob for known-noisy runners; the
// skip is printed loudly so a quiet log can't hide a disabled gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
)

func main() {
	oldPath := flag.String("old", "", "committed baseline BENCH_<exp>.json")
	newPath := flag.String("new", "", "freshly generated BENCH_<exp>.json")
	keys := flag.String("key", "", "comma-separated key columns that identify a row")
	col := flag.String("col", "", "metric column to compare")
	tol := flag.Float64("tol", 0.25, "allowed relative change in the bad direction")
	lowerBetter := flag.Bool("lower-better", false, "metric regresses by going up (default: by going down)")
	slack := flag.Float64("slack", 0, "absolute allowance on top of the relative tolerance (for near-zero baselines)")
	exact := flag.Bool("exact", false, "compare the column as strings; any change regresses (categorical columns)")
	min := flag.String("min", "", "absolute one-sided floor for the fresh column; replaces -old entirely")
	only := flag.String("only", "", "restrict the gate to the single row with this joined key (e.g. sharded-server/4)")
	flag.Parse()

	if os.Getenv("BENCHDIFF_SKIP") != "" {
		fmt.Printf("benchdiff: SKIPPED by BENCHDIFF_SKIP — %s %q NOT compared against %s\n", *newPath, *col, *oldPath)
		return
	}
	if *min != "" {
		if *oldPath != "" {
			fmt.Fprintln(os.Stderr, "benchdiff: -min is a baseline-free floor; drop -old")
			os.Exit(2)
		}
		if *newPath == "" || *keys == "" || *col == "" {
			fmt.Fprintln(os.Stderr, "benchdiff: -min needs -new, -key, and -col")
			flag.Usage()
			os.Exit(2)
		}
		floor, err := strconv.ParseFloat(*min, 64)
		exitOn(err)
		newT, err := loadTable(*newPath)
		exitOn(err)
		report, err := floorCheck(newT, splitKeys(*keys), *col, floor, *only)
		exitOn(err)
		fmt.Print(report.String())
		if len(report.Regressions) > 0 {
			os.Exit(1)
		}
		return
	}
	if *oldPath == "" || *newPath == "" || *keys == "" || *col == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old, -new, -key, and -col are required")
		flag.Usage()
		os.Exit(2)
	}
	oldT, err := loadTable(*oldPath)
	exitOn(err)
	newT, err := loadTable(*newPath)
	exitOn(err)
	report, err := diff(oldT, newT, splitKeys(*keys), *col, *tol, *lowerBetter, *slack, *exact, *only)
	exitOn(err)
	fmt.Print(report.String())
	if len(report.Regressions) > 0 {
		os.Exit(1)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}
