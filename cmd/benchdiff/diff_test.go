package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tbl(header []string, rows ...[]string) *table {
	return &table{Title: "t", Header: header, Rows: rows}
}

func TestParseCell(t *testing.T) {
	for in, want := range map[string]float64{
		"1.54":  1.54,
		"1.54x": 1.54,
		"83.3%": 83.3,
		"-0.5":  -0.5,
		"12 MB": 12,
		"3e2":   300,
		"0.00":  0,
	} {
		got, err := parseCell(in)
		if err != nil || got != want {
			t.Errorf("parseCell(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "fused", "x2"} {
		if _, err := parseCell(bad); err == nil {
			t.Errorf("parseCell(%q) should fail", bad)
		}
	}
}

func TestDiffHigherBetter(t *testing.T) {
	base := tbl([]string{"mode", "speedup"},
		[]string{"fused", "2.00x"},
		[]string{"split", "1.00x"})
	fresh := tbl([]string{"mode", "speedup"},
		[]string{"fused", "1.60x"}, // -20%: inside 25% tolerance
		[]string{"split", "0.70x"}) // -30%: regression
	res, err := diff(base, fresh, []string{"mode"}, "speedup", 0.25, false, 0, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 2 || len(res.Regressions) != 1 || res.Regressions[0].Key != "split" {
		t.Errorf("result %+v", res)
	}
	if !strings.Contains(res.String(), "REGRESSED") {
		t.Errorf("report missing verdict:\n%s", res.String())
	}
}

func TestDiffLowerBetterWithSlack(t *testing.T) {
	base := tbl([]string{"mode", "N", "allocs/stream"},
		[]string{"pooled", "1", "0.00"},
		[]string{"pooled", "2", "0.10"})
	fresh := tbl([]string{"mode", "N", "allocs/stream"},
		[]string{"pooled", "1", "1.50"}, // within the +2 absolute slack
		[]string{"pooled", "2", "9.00"}) // far past it
	res, err := diff(base, fresh, []string{"mode", "N"}, "allocs/stream", 0.25, true, 2, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 || res.Regressions[0].Key != "pooled/2" {
		t.Errorf("regressions %+v, want exactly pooled/2", res.Regressions)
	}
}

func TestDiffExact(t *testing.T) {
	base := tbl([]string{"merges", "mode"},
		[]string{"8000", "bpe+fused-general"},
		[]string{"32000", "bpe+split-general"})
	fresh := tbl([]string{"merges", "mode"},
		[]string{"8000", "bpe+fused-general"},  // unchanged: ok
		[]string{"32000", "bpe+fused-general"}) // changed: regression, even "for the better"
	res, err := diff(base, fresh, []string{"merges"}, "mode", 0.25, false, 0, true, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 2 || len(res.Regressions) != 1 || res.Regressions[0].Key != "32000" {
		t.Errorf("result %+v", res)
	}
	if !strings.Contains(res.String(), `"bpe+split-general" -> "bpe+fused-general"`) {
		t.Errorf("exact report should quote both cells:\n%s", res.String())
	}
	// Exact mode must not choke on non-numeric cells.
	if _, err := diff(base, base, []string{"merges"}, "mode", 0.25, false, 0, true, ""); err != nil {
		t.Errorf("exact self-diff on categorical column: %v", err)
	}
}

func TestDiffRowMatching(t *testing.T) {
	base := tbl([]string{"mode", "N", "MB/s"},
		[]string{"pooled", "1", "100"},
		[]string{"pooled", "8", "400"}) // GOMAXPROCS row, absent at CI scale
	fresh := tbl([]string{"mode", "N", "MB/s"},
		[]string{"pooled", "1", "100"},
		[]string{"pooled", "2", "150"}) // new machine's extra row
	res, err := diff(base, fresh, []string{"mode", "N"}, "MB/s", 0.25, false, 0, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 1 || res.SkippedOld != 1 || res.SkippedNew != 1 {
		t.Errorf("matched %d, skippedOld %d, skippedNew %d", len(res.Matched), res.SkippedOld, res.SkippedNew)
	}

	// Nothing in common: the gate must fail loudly, not pass quietly.
	disjoint := tbl([]string{"mode", "N", "MB/s"}, []string{"other", "3", "1"})
	if _, err := diff(base, disjoint, []string{"mode", "N"}, "MB/s", 0.25, false, 0, false, ""); err == nil {
		t.Error("zero matched rows should be an error")
	}
}

func TestDiffOnly(t *testing.T) {
	base := tbl([]string{"mode", "workers", "speedup"},
		[]string{"speculate", "4", "2.00x"},
		[]string{"sharded-server", "4", "3.00x"})
	fresh := tbl([]string{"mode", "workers", "speedup"},
		[]string{"speculate", "4", "0.50x"}, // regressed, but filtered out
		[]string{"sharded-server", "4", "2.90x"})
	res, err := diff(base, fresh, []string{"mode", "workers"}, "speedup", 0.25, false, 0, false, "sharded-server/4")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 1 || res.Matched[0].Key != "sharded-server/4" || len(res.Regressions) != 0 {
		t.Errorf("result %+v", res)
	}
	// A key that matches nothing must fail, not pass an empty gate.
	if _, err := diff(base, fresh, []string{"mode", "workers"}, "speedup", 0.25, false, 0, false, "nope/9"); err == nil {
		t.Error("only with zero matches should be an error")
	}
}

func TestFloorCheck(t *testing.T) {
	fresh := tbl([]string{"mode", "workers", "speedup"},
		[]string{"sharded-server", "1", "1.00x"},
		[]string{"sharded-server", "4", "2.80x"})
	res, err := floorCheck(fresh, []string{"mode", "workers"}, "speedup", 2.5, "sharded-server/4")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 1 || len(res.Regressions) != 0 {
		t.Errorf("result %+v", res)
	}
	if !strings.Contains(res.String(), "floor 2.5") {
		t.Errorf("floor report should state the floor:\n%s", res.String())
	}

	// Below the floor: regression. Without -only, the workers=1 row
	// would also be (wrongly) held to the floor — which is exactly why
	// the zero-match and filtering behavior matter.
	low := tbl([]string{"mode", "workers", "speedup"},
		[]string{"sharded-server", "4", "1.10x"})
	res, err = floorCheck(low, []string{"mode", "workers"}, "speedup", 2.5, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 || !strings.Contains(res.String(), "REGRESSED") {
		t.Errorf("result %+v\n%s", res, res.String())
	}

	if _, err := floorCheck(low, []string{"mode", "workers"}, "speedup", 2.5, "sharded-server/8"); err == nil {
		t.Error("floor with zero matched rows should be an error")
	}
	junk := tbl([]string{"mode", "speedup"}, []string{"a", "fast"})
	if _, err := floorCheck(junk, []string{"mode"}, "speedup", 1, ""); err == nil {
		t.Error("non-numeric cell should fail the floor check")
	}
}

func TestDiffErrors(t *testing.T) {
	base := tbl([]string{"mode", "speedup"}, []string{"fused", "2.0"})
	if _, err := diff(base, base, []string{"mode"}, "nope", 0.25, false, 0, false, ""); err == nil {
		t.Error("unknown metric column should fail")
	}
	if _, err := diff(base, base, []string{"nope"}, "speedup", 0.25, false, 0, false, ""); err == nil {
		t.Error("unknown key column should fail")
	}
	junk := tbl([]string{"mode", "speedup"}, []string{"fused", "fast"})
	if _, err := diff(base, junk, []string{"mode"}, "speedup", 0.25, false, 0, false, ""); err == nil {
		t.Error("non-numeric metric cell should fail")
	}
}

func TestLoadTable(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"title":"x","header":["a"],"rows":[["1"]]}`), 0o644)
	if tb, err := loadTable(good); err != nil || tb.Header[0] != "a" {
		t.Errorf("loadTable: %v %v", tb, err)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{`), 0o644)
	if _, err := loadTable(bad); err == nil {
		t.Error("malformed JSON should fail")
	}
	if _, err := loadTable(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

// TestAgainstCommittedArtifacts: the gate's real invocations — committed
// baseline vs itself — must pass, proving the key/column choices in CI
// match the artifacts' actual shape.
func TestAgainstCommittedArtifacts(t *testing.T) {
	for _, c := range []struct {
		file, keys, col string
		lower, exact    bool
	}{
		{file: "BENCH_hotloop.json", keys: "workload,grammar,mode", col: "speedup"},
		{file: "BENCH_concurrency.json", keys: "mode,N", col: "allocs/stream", lower: true},
		{file: "BENCH_biggrammar.json", keys: "grammar", col: "ratio", lower: true},
		{file: "BENCH_biggrammar.json", keys: "grammar", col: "dfa_bytes", lower: true},
		{file: "BENCH_bpe.json", keys: "merges", col: "ratio", lower: true},
		{file: "BENCH_bpe.json", keys: "merges", col: "dfa_bytes", lower: true},
		{file: "BENCH_bpe.json", keys: "merges", col: "classes", lower: true},
		{file: "BENCH_bpe.json", keys: "merges", col: "mode", exact: true},
		{file: "BENCH_bpe.json", keys: "merges", col: "cache_hit_pct"},
		{file: "BENCH_multicore.json", keys: "mode,workers", col: "speedup"},
		{file: "BENCH_multicore.json", keys: "mode,workers", col: "segments", exact: true},
		{file: "BENCH_multicore.json", keys: "mode,workers", col: "synced", exact: true},
		{file: "BENCH_multicore.json", keys: "mode,workers", col: "rescanned", exact: true},
	} {
		path := filepath.Join("..", "..", c.file)
		tb, err := loadTable(path)
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		res, err := diff(tb, tb, splitKeys(c.keys), c.col, 0.25, c.lower, 2, c.exact, "")
		if err != nil {
			t.Fatalf("%s self-diff: %v", c.file, err)
		}
		if len(res.Regressions) != 0 {
			t.Errorf("%s self-diff regressed: %+v", c.file, res.Regressions)
		}
	}
}
