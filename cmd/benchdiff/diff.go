package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// table mirrors the JSON shape paperbench -json writes (bench.Table).
type table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func loadTable(path string) (*table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(t.Header) == 0 {
		return nil, fmt.Errorf("%s: no header", path)
	}
	return &t, nil
}

// rowDiff is one matched row's comparison.
type rowDiff struct {
	Key      string
	Old, New float64
	// OldS/NewS are the raw cells, compared verbatim in -exact mode.
	OldS, NewS string
	// Regressed means the metric moved past tolerance in the bad
	// direction (or, in exact mode, changed at all).
	Regressed bool
}

// result is the full comparison outcome.
type result struct {
	Col         string
	Exact       bool
	Floor       *float64 // set in -min mode: the one-sided absolute floor
	Matched     []rowDiff
	Regressions []rowDiff
	SkippedOld  int // baseline rows with no fresh counterpart
	SkippedNew  int // fresh rows with no baseline counterpart
}

func (r *result) String() string {
	var sb strings.Builder
	for _, d := range r.Matched {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		switch {
		case r.Floor != nil:
			fmt.Fprintf(&sb, "benchdiff: %-40s %s %g (floor %g)  %s\n", d.Key, r.Col, d.New, *r.Floor, verdict)
		case r.Exact:
			fmt.Fprintf(&sb, "benchdiff: %-40s %s %q -> %q  %s\n", d.Key, r.Col, d.OldS, d.NewS, verdict)
		default:
			fmt.Fprintf(&sb, "benchdiff: %-40s %s %g -> %g  %s\n", d.Key, r.Col, d.Old, d.New, verdict)
		}
	}
	if r.SkippedOld+r.SkippedNew > 0 {
		fmt.Fprintf(&sb, "benchdiff: skipped %d baseline-only and %d fresh-only rows\n", r.SkippedOld, r.SkippedNew)
	}
	fmt.Fprintf(&sb, "benchdiff: %d rows compared, %d regressed\n", len(r.Matched), len(r.Regressions))
	return sb.String()
}

func splitKeys(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// columnIndex resolves a header name to its position.
func columnIndex(t *table, name string) (int, error) {
	for i, h := range t.Header {
		if h == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("column %q not in header %v", name, t.Header)
}

// parseCell extracts the leading float from a metric cell, tolerating
// unit suffixes like "1.54x", "83.3%", or "12 MB/s".
func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) {
		c := s[end]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
			((c == 'e' || c == 'E') && end > 0) {
			end++
			continue
		}
		break
	}
	if end == 0 {
		return 0, fmt.Errorf("cell %q is not numeric", s)
	}
	return strconv.ParseFloat(s[:end], 64)
}

// rowKey joins the key-column values of one row.
func rowKey(row []string, keyIdx []int) (string, error) {
	parts := make([]string, len(keyIdx))
	for i, idx := range keyIdx {
		if idx >= len(row) {
			return "", fmt.Errorf("row %v shorter than header", row)
		}
		parts[i] = row[idx]
	}
	return strings.Join(parts, "/"), nil
}

// floorCheck gates the metric column col of fresh against an absolute
// one-sided floor — no baseline involved. This is the live-scaling gate:
// a committed baseline from a 1-core host cannot express "the sharded
// server must scale on real cores", but -min 2.5 on the CI runner's
// fresh table can. only, when non-empty, restricts the check to the row
// whose joined key equals it (zero matched rows stays a failure).
func floorCheck(fresh *table, keys []string, col string, min float64, only string) (*result, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("no key columns")
	}
	colIdx, err := columnIndex(fresh, col)
	if err != nil {
		return nil, err
	}
	var keyIdx []int
	for _, k := range keys {
		ki, err := columnIndex(fresh, k)
		if err != nil {
			return nil, err
		}
		keyIdx = append(keyIdx, ki)
	}
	res := &result{Col: col, Floor: &min}
	for _, row := range fresh.Rows {
		key, err := rowKey(row, keyIdx)
		if err != nil {
			return nil, err
		}
		if only != "" && key != only {
			res.SkippedNew++
			continue
		}
		d := rowDiff{Key: key, NewS: row[colIdx]}
		if d.New, err = parseCell(d.NewS); err != nil {
			return nil, fmt.Errorf("row %s: %w", key, err)
		}
		d.Regressed = d.New < min
		res.Matched = append(res.Matched, d)
		if d.Regressed {
			res.Regressions = append(res.Regressions, d)
		}
	}
	if len(res.Matched) == 0 {
		return nil, fmt.Errorf("no rows matched the floor check (-only %q) — the gate would compare nothing", only)
	}
	return res, nil
}

// diff compares the metric column col of fresh against base, matching
// rows on the key columns. A row regresses when the fresh metric moves
// past base*tol (plus slack) in the bad direction — down for
// higher-is-better metrics, up for lower-is-better ones. With exact set
// the cells are compared as strings and any change regresses — the mode
// for categorical columns (an engine-mode name has no tolerance). only,
// when non-empty, restricts the comparison to the single row whose
// joined key equals it.
func diff(base, fresh *table, keys []string, col string, tol float64, lowerBetter bool, slack float64, exact bool, only string) (*result, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("no key columns")
	}
	colIdx := make(map[*table]int)
	keyIdx := make(map[*table][]int)
	for _, t := range []*table{base, fresh} {
		ci, err := columnIndex(t, col)
		if err != nil {
			return nil, err
		}
		colIdx[t] = ci
		for _, k := range keys {
			ki, err := columnIndex(t, k)
			if err != nil {
				return nil, err
			}
			keyIdx[t] = append(keyIdx[t], ki)
		}
	}

	baseRows := make(map[string]string)
	for _, row := range base.Rows {
		key, err := rowKey(row, keyIdx[base])
		if err != nil {
			return nil, err
		}
		baseRows[key] = row[colIdx[base]]
	}

	res := &result{Col: col, Exact: exact}
	seen := make(map[string]bool)
	for _, row := range fresh.Rows {
		key, err := rowKey(row, keyIdx[fresh])
		if err != nil {
			return nil, err
		}
		if only != "" && key != only {
			res.SkippedNew++
			continue
		}
		oldS, ok := baseRows[key]
		if !ok {
			res.SkippedNew++
			continue
		}
		seen[key] = true
		newS := row[colIdx[fresh]]
		d := rowDiff{Key: key, OldS: oldS, NewS: newS}
		if exact {
			d.Regressed = strings.TrimSpace(newS) != strings.TrimSpace(oldS)
		} else {
			if d.Old, err = parseCell(oldS); err != nil {
				return nil, fmt.Errorf("baseline row %s: %w", key, err)
			}
			if d.New, err = parseCell(newS); err != nil {
				return nil, fmt.Errorf("fresh row %s: %w", key, err)
			}
			if lowerBetter {
				d.Regressed = d.New > d.Old*(1+tol)+slack
			} else {
				d.Regressed = d.New < d.Old*(1-tol)-slack
			}
		}
		res.Matched = append(res.Matched, d)
		if d.Regressed {
			res.Regressions = append(res.Regressions, d)
		}
	}
	res.SkippedOld = len(baseRows) - len(seen)
	if len(res.Matched) == 0 {
		return nil, fmt.Errorf("no rows matched between baseline and fresh tables — the gate would compare nothing")
	}
	return res, nil
}
