// Command lexgen generates a standalone, dependency-free Go lexer from a
// tokenization grammar — the lexer-generator workflow of flex, with
// StreamTok's backtracking-free tables baked in.
//
// Usage:
//
//	lexgen -f grammar.tok -pkg mylexer -o lexer.go
//	lexgen -catalog csv -pkg csvlex > csvlex.go
//	lexgen -pkg lit '[0-9]+' '[ ]+' > lit.go
//
// grammar.tok uses the NAME := regex format (one rule per line, '#'
// comments). Generation fails (exit 1) for grammars with unbounded max
// token neighbor distance.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"streamtok/internal/grammarfile"
	"streamtok/internal/grammars"
	"streamtok/internal/lexgen"
	"streamtok/internal/tokdfa"
)

func main() {
	file := flag.String("f", "", "grammar file (NAME := regex per line)")
	catalog := flag.String("catalog", "", "use a built-in grammar")
	pkg := flag.String("pkg", "lexer", "package name for the generated file")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	g, err := load(*catalog, *file, flag.Args())
	exitOn(err)

	var buf bytes.Buffer
	warnings, err := lexgen.GenerateWithWarnings(&buf, *pkg, g)
	exitOn(err)
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "lexgen: warning:", w)
	}

	if *out == "" {
		_, err = os.Stdout.Write(buf.Bytes())
		exitOn(err)
		return
	}
	exitOn(os.WriteFile(*out, buf.Bytes(), 0o644))
	fmt.Fprintf(os.Stderr, "lexgen: wrote %s (%d bytes)\n", *out, buf.Len())
}

func load(catalog, file string, args []string) (*tokdfa.Grammar, error) {
	switch {
	case catalog != "":
		spec, err := grammars.Lookup(catalog)
		if err != nil {
			return nil, err
		}
		return spec.Grammar(), nil
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return grammarfile.Parse(f)
	case len(args) > 0:
		return tokdfa.ParseGrammar(args...)
	default:
		return nil, fmt.Errorf("no grammar: use -f, -catalog, or rule arguments")
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lexgen:", strings.TrimPrefix(err.Error(), "lexgen: "))
		os.Exit(1)
	}
}
