// Command streamtok tokenizes a stream (stdin or a file) with a
// tokenization grammar, using StreamTok by default or a baseline engine on
// request.
//
// Usage:
//
//	streamtok -catalog json < doc.json            # print tokens
//	streamtok -catalog csv -count < data.csv      # counts only
//	streamtok '[0-9]+' '[ ]+' < nums.txt          # ad-hoc grammar
//	streamtok -catalog log -engine flex < syslog  # baseline engine
//	streamtok -catalog json -stats text < doc.json  # counters to stderr
//
// Each token prints as "offset\tlength\trule\ttext" (TSV). Exit status 1
// when the stream has an untokenizable remainder. -stats prints the
// run's observability snapshot (text or json) to stderr; -timeout
// aborts a stuck stream via TokenizeContext.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"streamtok"
)

func main() {
	catalog := flag.String("catalog", "", "use a built-in grammar")
	engine := flag.String("engine", "streamtok", "engine: streamtok or flex")
	count := flag.Bool("count", false, "print token/byte counts instead of tokens")
	buf := flag.Int("buf", 0, "input buffer capacity in bytes (0 = 64KB)")
	input := flag.String("in", "", "input file (default stdin)")
	machine := flag.String("machine", "", "load a precompiled machine (tnd -emit) instead of a grammar")
	stats := flag.String("stats", "", "print observability stats to stderr: text or json (streamtok engine only)")
	timeout := flag.Duration("timeout", 0, "abort tokenization after this long (0 = no limit; streamtok engine only)")
	flag.Parse()

	if *stats != "" && *stats != "text" && *stats != "json" {
		exitOn(fmt.Errorf("unknown -stats format %q (text, json)", *stats))
	}

	var g *streamtok.Grammar
	var preloaded *streamtok.Tokenizer
	if *machine != "" {
		f, err := os.Open(*machine)
		exitOn(err)
		preloaded, g, err = streamtok.LoadCompiled(f)
		f.Close()
		exitOn(err)
	} else {
		var err error
		g, err = loadGrammar(*catalog, flag.Args())
		exitOn(err)
	}

	var src io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		exitOn(err)
		defer f.Close()
		src = f
	}
	r := &countingReader{r: src}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	tokens, bytes := 0, 0
	emit := func(tok streamtok.Token, text []byte) {
		tokens++
		bytes += tok.Len()
		if !*count {
			fmt.Fprintf(out, "%d\t%d\t%s\t%q\n", tok.Start, tok.Len(), g.RuleName(tok.Rule), text)
		}
	}

	var rest int
	switch *engine {
	case "streamtok":
		tok := preloaded
		if tok == nil {
			var err error
			tok, err = streamtok.New(g)
			exitOn(err)
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		var err error
		rest, err = tok.TokenizeContext(ctx, r, *buf, emit)
		exitOn(err)
		if *stats != "" {
			printStats(tok, *stats)
		}
	case "flex":
		if *stats != "" || *timeout > 0 {
			exitOn(fmt.Errorf("-stats and -timeout need the streamtok engine"))
		}
		sc, err := streamtok.NewFlexScanner(g)
		exitOn(err)
		rest, err = sc.Tokenize(r, *buf, emit)
		exitOn(err)
	default:
		exitOn(fmt.Errorf("unknown engine %q (streamtok, flex)", *engine))
	}

	if *count {
		fmt.Fprintf(out, "tokens\t%d\nbytes\t%d\nconsumed\t%d\n", tokens, bytes, rest)
	}
	out.Flush()
	// The engines read at least one byte past the point where
	// tokenization stops, so rest < r.n exactly when the stream has an
	// untokenizable remainder.
	if int64(rest) < r.n {
		fmt.Fprintf(os.Stderr, "streamtok: input not tokenizable past offset %d\n", rest)
		os.Exit(1)
	}
}

// printStats renders the run's observability snapshot plus the engine
// description and its resource certificate on stderr, keeping stdout
// clean for the token stream. Printing the certificate next to the
// observed counters lets a reader eyeball that the run stayed under its
// static bounds (ring high-water vs certified ring bytes, table bytes).
func printStats(tok *streamtok.Tokenizer, format string) {
	st := tok.AggregateStats()
	if format == "json" {
		out, err := json.Marshal(struct {
			Engine streamtok.EngineInfo   `json:"engine"`
			Cert   *streamtok.Certificate `json:"cert,omitempty"`
			Stats  streamtok.Stats        `json:"stats"`
		}{tok.Engine(), tok.Certificate(), st})
		exitOn(err)
		fmt.Fprintln(os.Stderr, string(out))
		return
	}
	fmt.Fprintf(os.Stderr, "engine:       %s\n", tok.Engine())
	if c := tok.Certificate(); c != nil {
		fmt.Fprintf(os.Stderr, "certified:    %s\n", c)
	}
	fmt.Fprintf(os.Stderr, "%s", st)
}

// countingReader counts the bytes handed to the tokenizer.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func loadGrammar(catalog string, args []string) (*streamtok.Grammar, error) {
	switch {
	case catalog != "":
		return streamtok.CatalogGrammar(catalog)
	case len(args) > 0:
		return streamtok.ParseGrammar(args...)
	default:
		return nil, fmt.Errorf("no grammar: pass -catalog NAME or rules as arguments")
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamtok:", err)
		os.Exit(2)
	}
}
