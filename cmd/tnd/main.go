// Command tnd runs the static analysis (Fig. 3) on a tokenization grammar
// and prints its NFA size, minimized DFA size, and maximum token neighbor
// distance.
//
// Usage:
//
//	tnd -catalog json               # analyze a built-in grammar
//	tnd '[0-9]+' '[ ]+'             # analyze rules given as arguments
//	tnd -f grammar.txt              # one rule per line
//	tnd -table1                     # print the paper's Table 1
//	tnd -lint '[0-9]*0' '[ ]+'      # full diagnostics with witnesses
//	tnd -lint -json -catalog csv    # machine-readable lint report
//	tnd -json -catalog json         # machine-readable analysis
//	tnd -certify -catalog json      # derive and verify the resource certificate
//
// Exit status 0 when the grammar has bounded max-TND (StreamTok applies),
// 1 when unbounded, 2 on usage errors. With -lint, additionally 3 when
// the linter finds error-severity defects (shadowed or unmatchable rules)
// in a grammar whose max-TND is bounded.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"streamtok"
	"streamtok/internal/analysis"
	"streamtok/internal/analysis/cert"
	"streamtok/internal/bench"
	"streamtok/internal/core"
	"streamtok/internal/grammarfile"
	"streamtok/internal/grammarlint"
	"streamtok/internal/grammars"
	"streamtok/internal/machinefile"
	"streamtok/internal/tepath"
	"streamtok/internal/tokdfa"
)

func main() {
	catalog := flag.String("catalog", "", "analyze a built-in grammar (see -listgrammars)")
	file := flag.String("f", "", "read rules from a file, one per line ('#' comments allowed)")
	table1 := flag.Bool("table1", false, "print the paper's Table 1 and exit")
	listGrammars := flag.Bool("listgrammars", false, "list built-in grammar names")
	witness := flag.Bool("witness", false, "print a witnessing token-extension path")
	emitMachine := flag.String("emit", "", "write the compiled machine (tables + analysis) to a file")
	dot := flag.Bool("dot", false, "print the tokenization DFA as Graphviz DOT and exit")
	lint := flag.Bool("lint", false, "run the full diagnostic suite (unbounded-TND root cause, shadowed rules, overlaps, ε-rules, error traps)")
	certify := flag.Bool("certify", false, "derive the static resource certificate, verify it, and print it")
	jsonOut := flag.Bool("json", false, "print the analysis (or, with -lint/-certify, the report) as JSON")
	fusedBudget := flag.Int("fused-budget", 0, "cap on fused action table bytes for -certify/-emit engines (0 = 16M default)")
	flag.Parse()

	if *listGrammars {
		for _, n := range grammars.Names() {
			fmt.Println(n)
		}
		return
	}
	if *table1 {
		fmt.Println(bench.Table1().Format())
		return
	}

	g, err := loadGrammar(*catalog, *file, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnd:", err)
		os.Exit(2)
	}
	if *lint {
		runLint(g, *jsonOut)
		return
	}
	m, err := tokdfa.Compile(g, tokdfa.Options{Minimize: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnd:", err)
		os.Exit(2)
	}
	if *dot {
		if err := m.DFA.WriteDOT(os.Stdout, g.RuleName); err != nil {
			fmt.Fprintln(os.Stderr, "tnd:", err)
			os.Exit(2)
		}
		return
	}
	res := analysis.Analyze(m)
	if *certify {
		runCertify(m, res, *jsonOut, *fusedBudget)
		return
	}
	if *jsonOut {
		// Render through the public Analysis type so tnd -json and the
		// library's MarshalJSON stay one format.
		out := streamtok.Analysis{
			MaxTND:  res.MaxTND,
			Bounded: res.Bounded(),
			NFASize: res.NFASize,
			DFASize: res.DFASize,
		}
		if u, v, ok := analysis.WitnessStrings(m, res); ok {
			out.WitnessU, out.WitnessV = u, v
		}
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnd:", err)
			os.Exit(2)
		}
		fmt.Println(string(blob))
		if !res.Bounded() {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("grammar:   %s\n", g.String())
	fmt.Printf("nfa size:  %d\n", res.NFASize)
	fmt.Printf("dfa size:  %d (minimized)\n", res.DFASize)
	fmt.Printf("max-TND:   %s\n", res.String())
	if res.Bounded() {
		fmt.Printf("verdict:   StreamTok applies (lookahead %s bytes)\n", res.String())
	} else {
		fmt.Printf("verdict:   unbounded; use an offline tokenizer or adapt the grammar\n")
	}
	if *witness && len(res.Witness) > 0 {
		fmt.Printf("witness:   DFA state path %v\n", res.Witness)
		if u, v, ok := analysis.WitnessStrings(m, res); ok {
			fmt.Printf("pair:      %q -> %q (distance %d)\n", u, v, len(v)-len(u))
		}
	}
	if *emitMachine != "" {
		if err := writeMachine(*emitMachine, m, res, *fusedBudget); err != nil {
			fmt.Fprintln(os.Stderr, "tnd:", err)
			os.Exit(2)
		}
		fmt.Printf("machine:   wrote %s\n", *emitMachine)
	}
	if !res.Bounded() {
		os.Exit(1)
	}
}

// runLint prints the diagnostic report and exits: 0 when StreamTok
// applies and no error-severity defects were found, 1 for unbounded
// max-TND, 3 for other error-severity defects.
func runLint(g *tokdfa.Grammar, jsonOut bool) {
	rep, err := grammarlint.Run(g, grammarlint.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnd:", err)
		os.Exit(2)
	}
	if jsonOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnd:", err)
			os.Exit(2)
		}
		fmt.Println(string(blob))
	} else {
		fmt.Print(rep.Format())
	}
	exit := 0
	for _, d := range rep.Diags {
		if d.Code == grammarlint.CodeUnboundedTND {
			os.Exit(1)
		}
		if d.Severity == grammarlint.SeverityError {
			exit = 3
		}
	}
	os.Exit(exit)
}

// runCertify derives the static resource certificate for the grammar's
// engine, runs the full machine-checkable verification on it (the same
// pass a loader applies), and prints it. Exits 1 when the grammar is
// unbounded (no certificate exists), 2 when certification or
// verification fails — either means the toolchain is broken.
func runCertify(m *tokdfa.Machine, res analysis.Result, jsonOut bool, fusedBudget int) {
	if !res.Bounded() {
		fmt.Fprintf(os.Stderr, "tnd: grammar %s has unbounded max-TND; no resource certificate exists\n", m.Grammar.String())
		os.Exit(1)
	}
	inner, err := core.NewWithKBudget(m, res.MaxTND, tepath.Limits{}, fusedBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnd:", err)
		os.Exit(2)
	}
	c, err := cert.New(m, res, inner)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnd: certify:", err)
		os.Exit(2)
	}
	if err := c.Verify(m, res.MaxTND, inner); err != nil {
		fmt.Fprintln(os.Stderr, "tnd: certificate failed its own verification:", err)
		os.Exit(2)
	}
	if jsonOut {
		blob, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnd:", err)
			os.Exit(2)
		}
		fmt.Println(string(blob))
		return
	}
	fmt.Printf("grammar:   %s\n", m.Grammar.String())
	fmt.Printf("hash:      %s\n", c.GrammarHash)
	fmt.Printf("cert:      %s\n", c)
	fmt.Printf("verified:  static bounds recomputed, witness replayed, engine matched\n")
}

func writeMachine(path string, m *tokdfa.Machine, res analysis.Result, fusedBudget int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = func() error {
		if !res.Bounded() {
			return machinefile.Encode(f, m, res.MaxTND)
		}
		// Bounded machines are emitted with their resource certificate so
		// loaders (streamtokd -machines, LoadCompiled) can verify the
		// file's cost claims before serving it. A non-default
		// -fused-budget shapes the certified engine; loaders configured
		// with a different budget re-certify on load.
		inner, err := core.NewWithKBudget(m, res.MaxTND, tepath.Limits{}, fusedBudget)
		if err != nil {
			return err
		}
		c, err := cert.New(m, res, inner)
		if err != nil {
			return err
		}
		return machinefile.EncodeWithCert(f, m, res.MaxTND, c)
	}()
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadGrammar(catalog, file string, args []string) (*tokdfa.Grammar, error) {
	switch {
	case catalog != "":
		spec, err := grammars.Lookup(catalog)
		if err != nil {
			return nil, err
		}
		return spec.Grammar(), nil
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		data, err := io.ReadAll(f)
		if err != nil {
			return nil, err
		}
		// Named format ("NAME := regex") or one bare regex per line.
		if strings.Contains(string(data), ":=") {
			return grammarfile.ParseString(string(data))
		}
		var rules []string
		sc := bufio.NewScanner(strings.NewReader(string(data)))
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			rules = append(rules, line)
		}
		return tokdfa.ParseGrammar(rules...)
	case len(args) > 0:
		return tokdfa.ParseGrammar(args...)
	default:
		return nil, fmt.Errorf("no grammar given: use -catalog, -f, or rule arguments")
	}
}
