// Command streamtokd serves tokenization over HTTP: POST a stream to
// /tokenize and get the tokens back as they are found, as NDJSON lines
// or fixed binary records, under per-request deadlines and byte limits
// with load shedding and graceful drain.
//
// Usage:
//
//	streamtokd                                    # serve on :8321
//	streamtokd -addr :9000 -preload json,csv      # pre-compile catalog grammars
//	streamtokd -machines ./machines               # pin precompiled machines (tnd -emit)
//	streamtokd -vocab cl100k.tiktoken             # pin a BPE vocabulary for ?vocab=cl100k
//	streamtokd -vocab-dir ./vocabs                # pin every vocabulary in a directory
//	streamtokd -max-concurrent 32 -deadline 10s   # tune admission control
//	streamtokd -mem-budget 4M                     # cap certified resident table bytes
//
//	curl -s --data-binary @doc.json 'localhost:8321/tokenize?grammar=json'
//	curl -sN -T - 'localhost:8321/tokenize?rule=%5B0-9%5D%2B&rule=%5B+%5D%2B' < nums.txt
//
// Endpoints: /tokenize (POST), /metrics (JSON), /statusz (text),
// /healthz, /debug/vars (expvar). On SIGTERM or SIGINT the daemon stops
// accepting new streams, lets in-flight ones finish (up to
// -drain-timeout), writes a final metrics snapshot to stderr, and exits
// 0 on a clean drain.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"streamtok/internal/server"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	preload := flag.String("preload", "", "comma-separated catalog grammars to compile at startup")
	machines := flag.String("machines", "", "directory of precompiled machine files (tnd -emit) to pin")
	vocabFiles := flag.String("vocab", "", "comma-separated BPE vocabulary files (tiktoken or tokenizer.json) to pin for ?vocab=")
	vocabDir := flag.String("vocab-dir", "", "directory of BPE vocabulary files to pin")
	maxConcurrent := flag.Int("max-concurrent", 0, "max tokenize streams in flight (0 = 4×GOMAXPROCS)")
	maxBytes := flag.Int64("max-bytes", 0, "per-request body limit in bytes (0 = 64MiB)")
	deadline := flag.Duration("deadline", 0, "per-request wall-time limit (0 = 30s)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint on 429/503 (0 = 1s)")
	registryCap := flag.Int("registry-cap", 0, "compiled-grammar cache capacity (0 = 64)")
	noAdhoc := flag.Bool("no-adhoc", false, "refuse ?rule= compile-on-demand grammars")
	memBudget := flag.String("mem-budget", "", "cap on certified resident table bytes across grammars, e.g. 4M or 256K (empty = unlimited)")
	fusedBudget := flag.String("fused-budget", "", "per-grammar cap on fused action tables, e.g. 4M (empty = 16M default; over-budget grammars serve from the split loops)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight streams on shutdown")
	flag.Parse()
	logger := log.New(os.Stderr, "streamtokd: ", log.LstdFlags)

	reg := server.NewRegistry(*registryCap)
	if *memBudget != "" {
		budget, err := parseBytes(*memBudget)
		if err != nil {
			logger.Fatalf("-mem-budget: %v", err)
		}
		reg.SetMemBudget(budget)
		logger.Printf("memory budget: %d B of certified resident tables", budget)
	}
	if *fusedBudget != "" {
		budget, err := parseBytes(*fusedBudget)
		if err != nil {
			logger.Fatalf("-fused-budget: %v", err)
		}
		reg.SetFusedBudget(int(budget))
		logger.Printf("fused table budget: %d B per grammar", budget)
	}
	if *machines != "" {
		names, err := reg.LoadMachineDir(*machines)
		if err != nil {
			logger.Fatalf("loading machines from %s: %v", *machines, err)
		}
		logger.Printf("pinned %d machine grammars: %s", len(names), strings.Join(names, ", "))
	}
	if *vocabDir != "" {
		names, err := reg.LoadVocabDir(*vocabDir)
		if err != nil {
			logger.Fatalf("loading vocabularies from %s: %v", *vocabDir, err)
		}
		logger.Printf("pinned %d vocabularies: %s", len(names), strings.Join(names, ", "))
	}
	for _, path := range splitList(*vocabFiles) {
		ent, err := reg.LoadVocab(path)
		if err != nil {
			logger.Fatalf("loading vocabulary %s: %v", path, err)
		}
		logger.Printf("pinned vocabulary %s (%d tokens)", ent.Name, ent.Vocab.Size())
	}
	for _, name := range splitList(*preload) {
		if _, err := reg.Lookup(name); err != nil {
			logger.Fatalf("preloading grammar %s: %v", name, err)
		}
	}

	s := server.New(server.Config{
		Registry:      reg,
		MaxBodyBytes:  *maxBytes,
		Deadline:      *deadline,
		MaxConcurrent: *maxConcurrent,
		RetryAfter:    *retryAfter,
		DisableAdhoc:  *noAdhoc,
	})
	s.PublishExpvar("streamtokd")

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/debug/vars", http.DefaultServeMux) // expvar's handler
	hs := &http.Server{Addr: *addr, Handler: mux}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case sig := <-sigc:
		logger.Printf("%s: draining (up to %s, %d streams in flight)", sig, *drainTimeout, s.InFlight())
	}

	// Drain: stop admitting (healthz and tokenize go 503 so load
	// balancers can see it), wait for in-flight streams, and only then
	// close the listener and remaining connections. Shutdown must come
	// after the wait — it closes the listener immediately, which would
	// turn the 503 window into connection-refused.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	final, drainErr := s.Drain(ctx)
	shutdownErr := hs.Shutdown(ctx)
	s.Close() // stop the shard workers once no stream can arrive

	// The final snapshot is the last word on what this process served;
	// emit it even when the drain timed out, so nothing is lost.
	snap, err := json.Marshal(final)
	if err != nil {
		logger.Fatalf("final snapshot: %v", err)
	}
	fmt.Fprintln(os.Stderr, string(snap))

	if drainErr != nil || (shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded)) {
		logger.Printf("drain incomplete: %d streams cut (shutdown: %v, drain: %v)",
			s.InFlight(), shutdownErr, drainErr)
		os.Exit(1)
	}
	logger.Printf("drained clean: %d streams served, %d tokens out", final.OK, final.TokensOut)
}

// parseBytes reads a byte count with an optional K/M/G suffix (powers
// of two, case-insensitive): "256K" = 262144, "4M" = 4194304.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a byte count like 1048576, 256K, 4M, or 1G, got %q", s)
	}
	return n * mult, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
