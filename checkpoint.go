package streamtok

import (
	"errors"
	"fmt"

	"streamtok/internal/analysis/cert"
	"streamtok/internal/core"
	"streamtok/internal/machinefile"
)

// Resumable streams: a suspended stream's live engine state is O(K)
// bytes — the delay ring, the pending token's carried prefix, and the
// tokenization DFA state — and Checkpoint serializes exactly that into
// a portable cursor blob. Resume reconstructs the stream on any
// tokenizer compiled from the same source (the cursor is bound to the
// certificate's grammar hash) and continues it exactly: subsequent
// Feed offsets, emitted tokens, and the Close drain are byte-identical
// to the stream that was never suspended.
//
// What a cursor does NOT carry: already-emitted tokens (the consumer
// owns those), the BPE piece cache (a resumed stream restarts cold and
// re-earns its hits), and any engine-representation state — cursors
// taken on one engine mode (fused/split, eager/lazy) resume on any
// other build of the same grammar.

// ErrCursor is wrapped by every Resume refusal: malformed or tampered
// blobs (also wrapping machinefile.ErrFormat), wrong-grammar cursors
// (also wrapping ErrCertMismatch), and cursors whose pending bytes
// fail replay verification.
var ErrCursor = errors.New("streamtok: cursor rejected")

// Checkpoint suspends the stream into a resumable cursor blob. It may
// be called between any two Feed calls; the stream itself remains
// usable and unchanged. The blob is versioned, CRC'd, and bound to the
// tokenizer's certificate grammar hash; its payload is the pending
// bytes past the last token boundary (at most the delay ring plus the
// current token's carried prefix) and the stream's observability
// counters. Stopped or closed streams cannot be checkpointed.
func (s *Streamer) Checkpoint() ([]byte, error) {
	if s.inner == nil {
		return nil, errors.New("streamtok: checkpoint of a released streamer")
	}
	cs, err := s.inner.CheckpointState()
	if err != nil {
		return nil, err
	}
	return machinefile.EncodeCursor(&machinefile.Cursor{
		GrammarHash: s.tok.cert.GrammarHash,
		EngineMode:  s.tok.inner.EngineMode(),
		Boundary:    int64(cs.Boundary),
		QA:          int64(cs.QA),
		Pending:     cs.Pending,
		Counters:    cs.Counters,
	})
}

// Resume reconstructs a suspended stream from a Checkpoint blob on t,
// which must be compiled from the same source the cursor was taken
// under: the cursor's grammar hash is verified against t's certificate
// and a mismatch is refused (ErrCursor wrapping ErrCertMismatch), as
// is any truncated, tampered, or otherwise malformed blob (ErrCursor
// wrapping machinefile.ErrFormat). The returned streamer continues the
// original stream exactly and is released like any acquired one
// (ReleaseStreamer).
func Resume(t *Tokenizer, cursor []byte) (*Streamer, error) {
	cur, err := machinefile.DecodeCursor(cursor)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCursor, err)
	}
	if cur.GrammarHash != t.cert.GrammarHash {
		return nil, fmt.Errorf("%w: %w: cursor was taken under grammar %.12s…, tokenizer is %.12s…",
			ErrCursor, cert.ErrMismatch, cur.GrammarHash, t.cert.GrammarHash)
	}
	cs := core.CheckpointState{
		Boundary: int(cur.Boundary),
		Pending:  cur.Pending,
		QA:       int(cur.QA),
		// The recorded DFA state is only comparable when the resuming
		// engine runs the same mode (the fused small engine runs A
		// undelayed, so its live state leads the split engines' by the
		// lookahead); across modes the replay verification alone
		// decides.
		CheckQA:  cur.EngineMode == t.inner.EngineMode(),
		Counters: cur.Counters,
	}
	s := t.AcquireStreamer()
	if err := s.inner.Restore(cs); err != nil {
		t.ReleaseStreamer(s)
		return nil, fmt.Errorf("%w: %w", ErrCursor, err)
	}
	return s, nil
}
