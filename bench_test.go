// Benchmarks regenerating the paper's tables and figures as testing.B
// targets — one per table/figure, plus the ablations called out in
// DESIGN.md. cmd/paperbench prints the same experiments as formatted
// tables; these integrate with `go test -bench`.
package streamtok_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"streamtok/internal/analysis"
	"streamtok/internal/backtrack"
	"streamtok/internal/core"
	"streamtok/internal/extoracle"
	"streamtok/internal/ghdataset"
	"streamtok/internal/grammars"
	"streamtok/internal/parallel"
	"streamtok/internal/reps"
	"streamtok/internal/tepath"
	"streamtok/internal/tokdfa"
	"streamtok/internal/token"
	"streamtok/internal/tokenskip"
	"streamtok/internal/workload"
)

const benchMB = 1 << 20

var (
	inputOnce  sync.Once
	benchInput map[string][]byte
)

func formatInput(b *testing.B, format string) []byte {
	b.Helper()
	inputOnce.Do(func() {
		benchInput = map[string][]byte{}
	})
	if in, ok := benchInput[format]; ok {
		return in
	}
	in, err := workload.Generate(format, 2026, benchMB)
	if err != nil {
		b.Fatal(err)
	}
	benchInput[format] = in
	return in
}

func machineFor(b *testing.B, format string) *tokdfa.Machine {
	b.Helper()
	spec, err := grammars.Lookup(format)
	if err != nil {
		b.Fatal(err)
	}
	return spec.Machine()
}

func streamTokFor(b *testing.B, m *tokdfa.Machine) *core.Tokenizer {
	b.Helper()
	res := analysis.Analyze(m)
	if !res.Bounded() {
		b.Fatal("unbounded grammar in benchmark")
	}
	tok, err := core.NewWithK(m, res.MaxTND, tepath.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	return tok
}

var sinkTokens int

func noopEmit(token.Token, []byte) { sinkTokens++ }

// BenchmarkTable1Analysis measures the static analysis on each Table 1
// grammar (compile + Fig. 3).
func BenchmarkTable1Analysis(b *testing.B) {
	for _, name := range []string{"json", "csv", "tsv", "xml", "c", "r", "sql"} {
		spec, err := grammars.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := spec.Machine()
				analysis.Analyze(m)
			}
		})
	}
}

// BenchmarkFig7dAnalysis measures the analysis alone across corpus
// grammar sizes (RQ2's time-vs-size relationship).
func BenchmarkFig7dAnalysis(b *testing.B) {
	entries := ghdataset.Corpus(2026)
	for _, idx := range []int{0, 100, 500, 1500, 2500} {
		e := entries[idx]
		g, err := tokdfa.ParseGrammar(e.Rules...)
		if err != nil {
			b.Fatal(err)
		}
		m, err := tokdfa.Compile(g, tokdfa.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nfa%d", m.NFASize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analysis.Analyze(m)
			}
		})
	}
}

// BenchmarkFig7dAnalysisNoWitness is BenchmarkFig7dAnalysis without the
// per-generation witness bookkeeping (AnalyzeOpts{Witness: false}), the
// configuration corpus sweeps and grammarlint subset probes use.
func BenchmarkFig7dAnalysisNoWitness(b *testing.B) {
	entries := ghdataset.Corpus(2026)
	for _, idx := range []int{0, 100, 500, 1500, 2500} {
		e := entries[idx]
		g, err := tokdfa.ParseGrammar(e.Rules...)
		if err != nil {
			b.Fatal(err)
		}
		m, err := tokdfa.Compile(g, tokdfa.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nfa%d", m.NFASize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analysis.AnalyzeWith(m, analysis.AnalyzeOpts{})
			}
		})
	}
}

// BenchmarkFig8 is the worst-case microbenchmark: r_k = a{0,k}b | a on an
// all-a input. StreamTok and ExtOracle should be flat in k; flex, Reps,
// and the in-memory scan degrade linearly.
func BenchmarkFig8(b *testing.B) {
	input := workload.WorstCase(256 * 1024)
	for _, k := range []int{2, 8, 32, 128} {
		g := tokdfa.MustParseGrammar(fmt.Sprintf(`a{0,%d}b`, k), `a`)
		m := tokdfa.MustCompile(g, tokdfa.Options{Minimize: true})
		st := streamTokFor(b, m)
		flex := backtrack.NewScanner(m)
		oracle := extoracle.New(m)
		b.Run(fmt.Sprintf("streamtok/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				s := st.NewStreamer()
				s.Feed(input, noopEmit)
				s.Close(noopEmit)
			}
		})
		b.Run(fmt.Sprintf("flex/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				if _, _, err := flex.Tokenize(bytes.NewReader(input), 64*1024, noopEmit); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reps/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				reps.Tokenize(m, input, noopEmit)
			}
		})
		b.Run(fmt.Sprintf("extoracle/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				oracle.Tokenize(input, nil, noopEmit)
			}
		})
	}
}

// BenchmarkFig9 measures tokenization across stream lengths (linearity in
// n for every tool; the per-tool ranking is Fig. 10's).
func BenchmarkFig9(b *testing.B) {
	for _, format := range []string{"json", "csv", "xml", "log"} {
		m := machineFor(b, format)
		st := streamTokFor(b, m)
		for _, size := range []int{benchMB / 4, benchMB} {
			in, err := workload.Generate(format, 2026, size)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%dKB", format, size/1024), func(b *testing.B) {
				b.SetBytes(int64(len(in)))
				for i := 0; i < b.N; i++ {
					s := st.NewStreamer()
					s.Feed(in, noopEmit)
					s.Close(noopEmit)
				}
			})
		}
	}
}

// BenchmarkFig10 measures per-tool throughput on every RQ3 data format at
// a fixed size (use -benchmem to see the memory contrast too).
func BenchmarkFig10(b *testing.B) {
	for _, format := range []string{"json", "csv", "tsv", "xml", "yaml", "fasta", "dns", "log"} {
		m := machineFor(b, format)
		input := formatInput(b, format)
		st := streamTokFor(b, m)
		flex := backtrack.NewScanner(m)
		oracle := extoracle.New(m)
		tape := make([]int32, len(input)+1)
		b.Run(format+"/streamtok", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				s := st.NewStreamer()
				s.Feed(input, noopEmit)
				s.Close(noopEmit)
			}
		})
		b.Run(format+"/flex", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				if _, _, err := flex.Tokenize(bytes.NewReader(input), 64*1024, noopEmit); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(format+"/reps", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				reps.Tokenize(m, input, noopEmit)
			}
		})
		b.Run(format+"/regexscan", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				backtrack.Scan(m, input, noopEmit)
			}
		})
		b.Run(format+"/extoracle", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				oracle.Tokenize(input, tape, noopEmit)
			}
		})
	}
}

// BenchmarkFig11a sweeps the input buffer capacity (RQ4): throughput
// should climb to ~64 KB and plateau.
func BenchmarkFig11a(b *testing.B) {
	m := machineFor(b, "json")
	input := formatInput(b, "json")
	st := streamTokFor(b, m)
	for _, bufKB := range []int{1, 16, 64, 1024} {
		buf := bufKB * 1024
		b.Run(fmt.Sprintf("buf=%dKB", bufKB), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				s := st.NewStreamer()
				for off := 0; off < len(input); off += buf {
					end := off + buf
					if end > len(input) {
						end = len(input)
					}
					s.Feed(input[off:end], noopEmit)
				}
				s.Close(noopEmit)
			}
		})
	}
}

// BenchmarkFig11b sweeps the average token length (RQ4): shorter tokens
// mean more per-token work and lower throughput.
func BenchmarkFig11b(b *testing.B) {
	m := machineFor(b, "csv")
	st := streamTokFor(b, m)
	for _, tokenLen := range []int{2, 8, 32, 128} {
		in := workload.CSVWithTokenLen(2026, benchMB, tokenLen)
		b.Run(fmt.Sprintf("len=%d", tokenLen), func(b *testing.B) {
			b.SetBytes(int64(len(in)))
			for i := 0; i < b.N; i++ {
				s := st.NewStreamer()
				s.Feed(in, noopEmit)
				s.Close(noopEmit)
			}
		})
	}
}

// BenchmarkTable2 measures the RQ5 applications end to end under both
// engines (log parsing shown for the linux format; conversions on JSON).
func BenchmarkTable2(b *testing.B) {
	logIn, err := workload.Log("linux", 2026, benchMB)
	if err != nil {
		b.Fatal(err)
	}
	logM := machineFor(b, "log")
	logST := streamTokFor(b, logM)
	logFlex := backtrack.NewScanner(logM)
	b.Run("logtotsv/streamtok", func(b *testing.B) {
		b.SetBytes(int64(len(logIn)))
		for i := 0; i < b.N; i++ {
			s := logST.NewStreamer()
			s.Feed(logIn, noopEmit)
			s.Close(noopEmit)
		}
	})
	b.Run("logtotsv/flex", func(b *testing.B) {
		b.SetBytes(int64(len(logIn)))
		for i := 0; i < b.N; i++ {
			if _, _, err := logFlex.Tokenize(bytes.NewReader(logIn), 64*1024, noopEmit); err != nil {
				b.Fatal(err)
			}
		}
	})

	jsonIn := formatInput(b, "json")
	jsonM := machineFor(b, "json")
	jsonST := streamTokFor(b, jsonM)
	jsonFlex := backtrack.NewScanner(jsonM)
	b.Run("jsonminify/streamtok", func(b *testing.B) {
		b.SetBytes(int64(len(jsonIn)))
		for i := 0; i < b.N; i++ {
			s := jsonST.NewStreamer()
			s.Feed(jsonIn, noopEmit)
			s.Close(noopEmit)
		}
	})
	b.Run("jsonminify/flex", func(b *testing.B) {
		b.SetBytes(int64(len(jsonIn)))
		for i := 0; i < b.N; i++ {
			if _, _, err := jsonFlex.Tokenize(bytes.NewReader(jsonIn), 64*1024, noopEmit); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRQ6Memory contrasts allocation behaviour (run with -benchmem):
// StreamTok allocates per-stream state only; ExtOracle allocates the Θ(n)
// lookahead tape every run.
func BenchmarkRQ6Memory(b *testing.B) {
	m := machineFor(b, "csv")
	input := formatInput(b, "csv")
	st := streamTokFor(b, m)
	b.Run("streamtok", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := st.NewStreamer()
			s.Feed(input, noopEmit)
			s.Close(noopEmit)
		}
	})
	b.Run("extoracle", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			oracle := extoracle.New(m)
			oracle.Tokenize(input, nil, noopEmit) // allocates the tape
		}
	})
}

// BenchmarkAblationK1Special isolates the Fig. 5 specialization: the same
// max-TND-1 grammar run through the K=1 fast path vs the general Fig. 6
// machinery (built with the overestimate K=2).
func BenchmarkAblationK1Special(b *testing.B) {
	m := machineFor(b, "csv")
	input := formatInput(b, "csv")
	// Split constructors: this ablation isolates Fig. 5 vs Fig. 6
	// interpretation, not the fused engine (see BenchmarkFeed* for that).
	k1, err := core.NewSplitWithK(m, 1, tepath.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	general, err := core.NewSplitWithK(m, 2, tepath.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	for name, tok := range map[string]*core.Tokenizer{"fig5-k1": k1, "fig6-general": general} {
		tok := tok
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				s := tok.NewStreamer()
				s.Feed(input, noopEmit)
				s.Close(noopEmit)
			}
		})
	}
}

// BenchmarkAblationTeDFAVsLazy isolates eager vs lazy TeDFA determinization
// on a K=3 grammar.
func BenchmarkAblationTeDFAVsLazy(b *testing.B) {
	m := machineFor(b, "json")
	input := formatInput(b, "json")
	// Split constructor so the comparison isolates the TeDFA strategy.
	eager, err := core.NewSplitWithK(m, 3, tepath.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	lazy, err := core.NewLazyWithK(m, 3, tepath.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	for name, tok := range map[string]*core.Tokenizer{"eager": eager, "lazy": lazy} {
		tok := tok
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				s := tok.NewStreamer()
				s.Feed(input, noopEmit)
				s.Close(noopEmit)
			}
		})
	}
}

// BenchmarkAblationDenseVsClass isolates the dense 256-ary transition
// rows against the byte-class compressed rows (byte -> class -> target)
// that are now the repository's engine substrate. The dense arm drives
// the DenseTrans export view — the layout earlier versions used as the
// working representation — so the benchmark prices the extra L1-resident
// class-map lookup the ~C/256 table shrink costs.
func BenchmarkAblationDenseVsClass(b *testing.B) {
	m := machineFor(b, "json")
	input := formatInput(b, "json")
	d := m.DFA
	dense := d.DenseTrans()
	numClasses := d.NumClasses()
	classOf := d.ClassOf
	classTrans := d.Trans
	b.Logf("json DFA: %d states, %d byte classes", d.NumStates(), numClasses)

	b.Run("dense", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			q := int32(d.Start)
			for _, c := range input {
				q = dense[int(q)*256+int(c)]
			}
			sinkTokens += int(q)
		}
	})
	b.Run("class-compressed", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			q := int32(d.Start)
			for _, c := range input {
				q = classTrans[int(q)*numClasses+int(classOf[c])]
			}
			sinkTokens += int(q)
		}
	})
}

// BenchmarkParallel contrasts sequential StreamTok with the speculative
// parallel engine (§8 future work) on a self-synchronizing format.
func BenchmarkParallel(b *testing.B) {
	m := machineFor(b, "log")
	st := streamTokFor(b, m)
	in, err := workload.Log("linux", 2026, 8*benchMB)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(in)))
		for i := 0; i < b.N; i++ {
			s := st.NewStreamer()
			s.Feed(in, noopEmit)
			s.Close(noopEmit)
		}
	})
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(in)))
			for i := 0; i < b.N; i++ {
				parallel.Tokenize(st, in, parallel.Options{Workers: workers}, noopEmit)
			}
		})
	}
}

// BenchmarkOOPSLA25Baselines contrasts the two offline algorithms of
// Li & Mamouras (OOPSLA '25): the paper demonstrated ExtOracle to be the
// more competitive one; TokenSkip's backward pass costs O(M) per byte.
func BenchmarkOOPSLA25Baselines(b *testing.B) {
	m := machineFor(b, "csv")
	input := formatInput(b, "csv")
	oracle := extoracle.New(m)
	skipper := tokenskip.New(m)
	tape := make([]int32, len(input)+1)
	b.Run("extoracle", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			oracle.Tokenize(input, tape, noopEmit)
		}
	})
	b.Run("tokenskip", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			skipper.Tokenize(input, noopEmit)
		}
	})
}

// --- Hot-loop microbenchmarks (ISSUE 2 tentpole) ------------------------
//
// BenchmarkFeed* isolate the per-byte steady-state cost of each engine
// mode, running the same grammar+input through the split interpreter,
// the fused action-table engine, and the fused engine without accel
// states. MB/s comes from b.SetBytes.

func benchEngineVariants(b *testing.B, m *tokdfa.Machine, k int, input []byte) {
	variants := []struct {
		name  string
		build func(*tokdfa.Machine, int, tepath.Limits) (*core.Tokenizer, error)
	}{
		{"split", core.NewSplitWithK},
		{"fused-noaccel", core.NewNoAccelWithK},
		{"fused", core.NewWithK},
	}
	for _, v := range variants {
		tok, err := v.build(m, k, tepath.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := tok.NewStreamer()
				s.Feed(input, noopEmit)
				s.Close(noopEmit)
			}
		})
	}
}

// BenchmarkFeedK0 is the max-TND-0 loop (single-byte tokens: no
// lookahead, emit at every final state).
func BenchmarkFeedK0(b *testing.B) {
	g := tokdfa.MustParseGrammar(`[0-9]`, `[ ]`)
	m, err := tokdfa.Compile(g, tokdfa.Options{})
	if err != nil {
		b.Fatal(err)
	}
	in := bytes.Repeat([]byte("3141592 65358 97932 384626 43383 27950 2884 "), benchMB/44)
	benchEngineVariants(b, m, 0, in)
}

// BenchmarkFeedK1 is the Fig. 5 one-byte-lookahead loop on the CSV
// catalog grammar.
func BenchmarkFeedK1(b *testing.B) {
	benchEngineVariants(b, machineFor(b, "csv"), 1, formatInput(b, "csv"))
}

// BenchmarkFeedGeneral is the Fig. 6 loop (eager TeDFA, K=3) on the
// JSON catalog grammar.
func BenchmarkFeedGeneral(b *testing.B) {
	benchEngineVariants(b, machineFor(b, "json"), 3, formatInput(b, "json"))
}

// BenchmarkFeedGeneralLazy is the lazily determinized Fig. 6 loop (the
// fused engine does not apply; this is the fallback everything else is
// measured against).
func BenchmarkFeedGeneralLazy(b *testing.B) {
	m := machineFor(b, "json")
	input := formatInput(b, "json")
	tok, err := core.NewLazyWithK(m, 3, tepath.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(input)))
	for i := 0; i < b.N; i++ {
		s := tok.NewStreamer()
		s.Feed(input, noopEmit)
		s.Close(noopEmit)
	}
}

// BenchmarkFeedFused is the headline run-heavy sweep: workloads
// dominated by long self-loop runs (JSON long strings, column-aligned
// log whitespace, long CSV fields), where the accel states get to skip
// in bulk.
func BenchmarkFeedFused(b *testing.B) {
	cases := []struct {
		name   string
		format string
		k      int
		input  []byte
	}{
		{"json-longstr", "json", 3, workload.JSONWithTokenLen(2026, benchMB, 512)},
		{"log-aligned", "log", 1, workload.LogAligned(2026, benchMB, 32)},
		{"csv-longfield", "csv", 1, workload.CSVWithTokenLen(2026, benchMB, 256)},
	}
	for _, c := range cases {
		m := machineFor(b, c.format)
		b.Run(c.name, func(b *testing.B) {
			benchEngineVariants(b, m, c.k, c.input)
		})
	}
}
