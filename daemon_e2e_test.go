package streamtok_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonE2E drives the streamtokd binary over real TCP: start it,
// stream a chunked body and read tokens back, check /metrics, then
// SIGTERM it mid-stream and verify the graceful-drain contract — the
// in-flight stream runs to its done summary, new streams get 503, the
// process exits 0, and the final snapshot it logs reconciles exactly
// with what the client received.
func TestDaemonE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "streamtokd")
	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-preload", "json", "-drain-timeout", "30s")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := "http://" + addr

	// Wait for the daemon to come up.
	waitE2E(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// Stream a body in trickled chunks so the daemon is mid-stream for
	// long enough to signal it.
	const chunks = 20
	chunk := strings.Repeat(`{"k": [1, 2, 3]} `, 8)
	pr, pw := io.Pipe()
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < chunks; i++ {
			if _, err := pw.Write([]byte(chunk)); err != nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		pw.Close()
	}()
	resp, err := http.Post(base+"/tokenize?grammar=json", "", pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the streamed NDJSON; after the first token line, check
	// /metrics shows the live stream, SIGTERM the daemon, and verify it
	// refuses new streams while ours keeps flowing.
	var tokens uint64
	var summary map[string]any
	signalled := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line["done"] != nil || line["error"] != nil {
			summary = line
			continue
		}
		tokens++
		if !signalled {
			signalled = true
			assertLiveMetrics(t, base)
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			assertDrainRefuses(t, base)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	<-writerDone
	if !signalled {
		t.Fatal("no token lines streamed before the body finished")
	}
	if summary == nil || summary["done"] != true {
		t.Fatalf("stream cut by drain, summary = %v", summary)
	}
	if got := uint64(summary["tokens"].(float64)); got != tokens {
		t.Fatalf("summary says %d tokens, client received %d", got, tokens)
	}

	// The daemon exits 0 once the drain completes...
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after drain\n%s", stderr.String())
	}

	// ...and its final snapshot reconciles with the client: every token
	// the server confirmed was received, none lost to the drain.
	snap := finalSnapshot(t, stderr.String())
	if got := uint64(snap["tokens_out"].(float64)); got != tokens {
		t.Errorf("final snapshot counts %d tokens out, client received %d", got, tokens)
	}
	if ok := snap["ok"].(float64); ok != 1 {
		t.Errorf("final snapshot ok = %v, want 1", ok)
	}
	if unavail := snap["unavailable"].(float64); unavail < 1 {
		t.Errorf("final snapshot unavailable = %v, want the refused drain-time request", unavail)
	}
}

// TestDaemonMemBudget drives the -mem-budget flag end to end: a daemon
// with a budget smaller than any catalog grammar's certified tables
// refuses to serve it with a 422 carrying the certificate, and /statusz
// reports the budget and the reject.
func TestDaemonMemBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "streamtokd")
	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-mem-budget", "8K")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()
	base := "http://" + addr
	waitE2E(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	resp, err := http.Post(base+"/tokenize?grammar=json", "", strings.NewReader(`{"a": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body:\n%s\nstderr:\n%s", resp.StatusCode, body, stderr.String())
	}
	for _, want := range []string{"mem-budget", "certificate:", "tables"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("422 body missing %q:\n%s", want, body)
		}
	}

	resp, err = http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	statusz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"budget:", "8192 B", "1 budget rejects"} {
		if !strings.Contains(string(statusz), want) {
			t.Errorf("/statusz missing %q:\n%s", want, statusz)
		}
	}
}

// assertLiveMetrics checks /metrics mid-stream: one stream in flight on
// the json grammar.
func assertLiveMetrics(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["inflight"].(float64) != 1 {
		t.Errorf("mid-stream inflight = %v, want 1", m["inflight"])
	}
	grammars, _ := m["grammars"].([]any)
	found := false
	for _, g := range grammars {
		if g.(map[string]any)["name"] == "json" {
			found = true
		}
	}
	if !found {
		t.Errorf("json grammar missing from /metrics: %v", grammars)
	}
}

// assertDrainRefuses checks that a draining daemon sheds new streams
// with 503 + Retry-After and reports draining on /healthz.
func assertDrainRefuses(t *testing.T, base string) {
	t.Helper()
	waitE2E(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	resp, err := http.Post(base+"/tokenize?grammar=json", "", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("tokenize during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 during drain missing Retry-After")
	}
}

// finalSnapshot extracts the JSON metrics document streamtokd writes to
// stderr during shutdown.
func finalSnapshot(t *testing.T, stderr string) map[string]any {
	t.Helper()
	for _, line := range strings.Split(stderr, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var snap map[string]any
		if err := json.Unmarshal([]byte(line), &snap); err == nil {
			return snap
		}
	}
	t.Fatalf("no final snapshot in daemon stderr:\n%s", stderr)
	return nil
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitE2E(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
