package streamtok_test

import (
	"fmt"
	"strings"

	"streamtok"
)

// ExampleAnalyze shows the static analysis on Example 9's
// scientific-notation grammar: the max-TND is 3 because a bare integer
// can be extended by an "e+5"-style exponent.
func ExampleAnalyze() {
	g := streamtok.MustParseGrammar(`[0-9]+([eE][+-]?[0-9]+)?`, `[ ]+`)
	a, _ := streamtok.Analyze(g)
	fmt.Println("max-TND:", a.TND())
	fmt.Printf("witness: %s -> %s\n", a.WitnessU, a.WitnessV)
	// Output:
	// max-TND: 3
	// witness: 0 -> 0E+0
}

// ExampleNew tokenizes a stream with StreamTok.
func ExampleNew() {
	g := streamtok.MustParseGrammar(`[0-9]+`, `[a-z]+`, `[ ]+`).Named("NUM", "WORD", "WS")
	tok, _ := streamtok.New(g)
	tok.Tokenize(strings.NewReader("watch 007 now"), 0,
		func(t streamtok.Token, text []byte) {
			if t.Rule != 2 { // skip whitespace
				fmt.Printf("%s %q\n", g.RuleName(t.Rule), text)
			}
		})
	// Output:
	// WORD "watch"
	// NUM "007"
	// WORD "now"
}

// ExampleTokenizer_NewStreamer shows push-mode streaming: chunks arrive
// from anywhere, tokens are emitted as soon as they are confirmed
// maximal.
func ExampleTokenizer_NewStreamer() {
	g := streamtok.MustParseGrammar(`[0-9]+(\.[0-9]+)?`, `,`)
	tok, _ := streamtok.New(g)
	s := tok.NewStreamer()
	for _, chunk := range []string{"3.1", "4,2", ",10"} {
		s.Feed([]byte(chunk), func(t streamtok.Token, text []byte) {
			fmt.Printf("%q ", text)
		})
	}
	s.Close(func(t streamtok.Token, text []byte) { fmt.Printf("%q ", text) })
	// Output: "3.14" "," "2" "," "10"
}

// ExampleCompile shows the multi-frontend constructor: any Source — a
// grammar, a BPE vocabulary, a machine file — compiles through the same
// pipeline into the same Tokenizer API.
func ExampleCompile() {
	// A grammar source.
	g := streamtok.MustParseGrammar(`[0-9]+`, `[a-z]+`, `[ ]+`)
	tok, _ := streamtok.Compile(g, streamtok.Options{Minimize: true})
	n := 0
	tok.Tokenize(strings.NewReader("watch 007 now"), 0,
		func(t streamtok.Token, text []byte) { n++ })
	fmt.Println("grammar tokens:", n)

	// A BPE vocabulary source: Token.Rule is the rank.
	v, _ := streamtok.TrainVocab([]byte(strings.Repeat("the cat sat on the mat. ", 40)), 40, 0)
	btok, _ := streamtok.Compile(v, streamtok.Options{})
	ranks, _ := btok.TokenizeBytes([]byte("the cat sat"))
	dec := []int{}
	for _, t := range ranks {
		dec = append(dec, t.Rule)
	}
	fmt.Printf("bpe round trip: %q\n", btok.Vocab().Decode(nil, dec))
	// Output:
	// grammar tokens: 5
	// bpe round trip: "the cat sat"
}

// ExampleErrUnbounded shows the analysis rejecting a grammar that cannot
// be tokenized in bounded memory (Example 9, row 5).
func ExampleErrUnbounded() {
	g := streamtok.MustParseGrammar(`[0-9]*0`, `[ ]+`)
	_, err := streamtok.New(g)
	fmt.Println(err != nil)
	a, _ := streamtok.Analyze(g)
	fmt.Println("bounded:", a.Bounded)
	// Output:
	// true
	// bounded: false
}
